//===- tests/scale_program_test.cpp - Scale-generator properties ------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property tests for the seeded scale-program generator (fuzz/ScaleProgram):
/// same seed + same config must produce byte-identical text (including a
/// 10k-function module, generation only); generated modules must compile,
/// allocate cleanly under both allocators with the assignment verifier on,
/// and run trap-free to the same checksum as the unallocated reference under
/// a bounded fuel budget.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "fuzz/ScaleProgram.h"

#include "gtest/gtest.h"

#include <string>

using namespace rap;
using namespace rap::fuzz;

namespace {

ScaleProgramConfig smallConfig(unsigned Seed) {
  ScaleProgramConfig C;
  C.Seed = Seed;
  C.NumFunctions = 10;
  C.StmtsPerFunction = 6;
  C.PressureVars = 4;
  return C;
}

//===----------------------------------------------------------------------===//
// Seed determinism
//===----------------------------------------------------------------------===//

TEST(ScaleProgram, SameSeedByteIdentical) {
  for (unsigned Seed : {1u, 7u, 42u}) {
    ScaleProgramConfig C = smallConfig(Seed);
    std::string A = ScaleProgramBuilder(C).buildModule();
    std::string B = ScaleProgramBuilder(C).buildModule();
    EXPECT_EQ(A, B) << "seed " << Seed;
    EXPECT_EQ(ScaleProgramBuilder(C).buildDeepFunction(),
              ScaleProgramBuilder(C).buildDeepFunction())
        << "seed " << Seed;
  }
}

TEST(ScaleProgram, BuilderIsReusable) {
  // One builder produces the same text on repeated builds (state resets).
  ScaleProgramConfig C = smallConfig(3);
  ScaleProgramBuilder B(C);
  std::string First = B.buildModule();
  EXPECT_EQ(First, B.buildModule());
  std::string Deep = B.buildDeepFunction();
  EXPECT_EQ(Deep, B.buildDeepFunction());
  // Interleaving the two products must not perturb either.
  EXPECT_EQ(First, B.buildModule());
}

TEST(ScaleProgram, DifferentSeedsDiffer) {
  std::string A = ScaleProgramBuilder(smallConfig(1)).buildModule();
  std::string B = ScaleProgramBuilder(smallConfig(2)).buildModule();
  EXPECT_NE(A, B);
}

TEST(ScaleProgram, TenThousandFunctionsGenerateDeterministically) {
  // Generation-only at the headline scale: two independent builders, equal
  // bytes, and the text really contains the last function.
  ScaleProgramConfig C;
  C.Seed = 11;
  C.NumFunctions = 10000;
  C.StmtsPerFunction = 4;
  C.PressureVars = 2;
  std::string A = ScaleProgramBuilder(C).buildModule();
  std::string B = ScaleProgramBuilder(C).buildModule();
  ASSERT_EQ(A.size(), B.size());
  EXPECT_EQ(A, B);
  EXPECT_NE(A.find("int f9999(int a, int b)"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Generated programs are safe: they compile, allocate verifiably, and run
// trap-free to the reference checksum within a bounded fuel budget.
//===----------------------------------------------------------------------===//

void expectCompilesRunsAndVerifies(const std::string &Src, unsigned Seed) {
  constexpr uint64_t Fuel = 50'000'000; // far above any generated workload

  CompileOptions RefOpts; // unallocated reference
  CompileResult Ref = compileMiniC(Src, RefOpts);
  ASSERT_TRUE(Ref.ok()) << "seed " << Seed << ":\n" << Ref.Errors;
  RunResult RefRun = Interpreter(*Ref.Prog).run("main", Fuel);
  ASSERT_TRUE(RefRun.Ok) << "seed " << Seed << ": " << RefRun.Error;
  int64_t Want = RefRun.ReturnValue.asInt();

  for (AllocatorKind Kind : {AllocatorKind::Rap, AllocatorKind::Gra}) {
    for (unsigned K : {3u, 8u}) {
      CompileOptions Opts;
      Opts.Allocator = Kind;
      Opts.Alloc.K = K;
      // Strict: a verifier rejection or any allocation error must fail the
      // compile, not degrade silently.
      Opts.Alloc.VerifyAssignments = true;
      Opts.Alloc.FallbackOnError = false;
      CompileResult CR = compileMiniC(Src, Opts);
      ASSERT_TRUE(CR.ok())
          << "seed " << Seed << " alloc "
          << (Kind == AllocatorKind::Rap ? "rap" : "gra") << " k=" << K
          << ":\n"
          << CR.Errors;
      RunResult R = Interpreter(*CR.Prog).run("main", Fuel);
      ASSERT_TRUE(R.Ok) << "seed " << Seed << ": " << R.Error;
      EXPECT_EQ(R.ReturnValue.asInt(), Want)
          << "seed " << Seed << " alloc "
          << (Kind == AllocatorKind::Rap ? "rap" : "gra") << " k=" << K;
    }
  }
}

TEST(ScaleProgram, ModulesAllocateAndRunTrapFree) {
  for (unsigned Seed : {1u, 5u, 9u}) {
    ScaleProgramConfig C = smallConfig(Seed);
    expectCompilesRunsAndVerifies(ScaleProgramBuilder(C).buildModule(),
                                  Seed);
  }
}

TEST(ScaleProgram, DeepFunctionAllocatesAndRunsTrapFree) {
  ScaleProgramConfig C;
  C.Seed = 7;
  C.DeepDepth = 4;
  C.DeepFanout = 2;
  C.PressureVars = 2;
  expectCompilesRunsAndVerifies(ScaleProgramBuilder(C).buildDeepFunction(),
                                C.Seed);
}

TEST(ScaleProgram, WiderModuleCompilesUnderRap) {
  // A mid-size module (100 functions, the config default) through the full
  // RAP pipeline: allocation must stay clean (no fallbacks) and the result
  // must run trap-free.
  ScaleProgramConfig C;
  C.Seed = 13;
  constexpr uint64_t Fuel = 100'000'000;

  std::string Src = ScaleProgramBuilder(C).buildModule();
  CompileOptions Opts;
  Opts.Allocator = AllocatorKind::Rap;
  Opts.Alloc.K = 8;
  Opts.Alloc.FallbackOnError = false;
  CompileResult CR = compileMiniC(Src, Opts);
  ASSERT_TRUE(CR.ok()) << CR.Errors;
  EXPECT_FALSE(CR.degraded());
  RunResult R = Interpreter(*CR.Prog).run("main", Fuel);
  ASSERT_TRUE(R.Ok) << R.Error;
}

} // namespace
