//===- tests/alloc_invariants_test.cpp - Post-allocation invariants -----------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural invariants every allocated Table 1 binary must satisfy, per
/// routine and allocator:
///
///   * every register operand is a physical register < k;
///   * RAP's pre-rewrite coloring passes the independent verifier;
///   * parameter registers are pairwise distinct when the parameters are
///     simultaneously live at entry;
///   * no trivial copies (mv rX, rX) survive rewriting;
///   * spill slots referenced by the code were actually allocated.
///
//===----------------------------------------------------------------------===//

#include "benchprogs/BenchPrograms.h"
#include "driver/Pipeline.h"
#include "ir/Linearize.h"
#include "regalloc/AssignmentVerifier.h"
#include "regalloc/Rap.h"

#include "gtest/gtest.h"

using namespace rap;

namespace {

class AllocInvariants : public ::testing::TestWithParam<int> {};

TEST_P(AllocInvariants, PhysicalCodeIsWellFormed) {
  const BenchProgram &P = benchPrograms()[GetParam()];
  for (AllocatorKind Kind : {AllocatorKind::Gra, AllocatorKind::Rap}) {
    const unsigned K = 3;
    CompileOptions Opts;
    Opts.Allocator = Kind;
    Opts.Alloc.K = K;
    CompileResult CR = compileMiniC(P.Source, Opts);
    ASSERT_TRUE(CR.ok()) << CR.Errors;
    for (const auto &F : CR.Prog->functions()) {
      ASSERT_TRUE(F->isAllocated());
      EXPECT_EQ(F->numPhysRegs(), K);
      LinearCode Code = linearize(*F);
      for (const Instr *I : Code.Instrs) {
        for (Reg R : I->Src)
          EXPECT_LT(R, K) << F->name() << ": " << I->str();
        if (I->hasDef()) {
          EXPECT_LT(I->Dst, K) << F->name() << ": " << I->str();
        }
        EXPECT_FALSE(I->Op == Opcode::Mv && I->Dst == I->Src[0])
            << "trivial copy survived rewriting: " << I->str();
        if (I->Op == Opcode::LdSpill || I->Op == Opcode::StSpill) {
          EXPECT_GE(I->Slot, 0);
          EXPECT_LT(I->Slot, F->numSpillSlots());
        }
      }
      for (unsigned A = 0; A != F->numParams(); ++A)
        EXPECT_LT(F->paramReg(A), K);
    }
  }
}

TEST_P(AllocInvariants, RapColoringPassesIndependentVerifier) {
  const BenchProgram &P = benchPrograms()[GetParam()];
  CompileOptions Opts; // unallocated
  CompileResult CR = compileMiniC(P.Source, Opts);
  ASSERT_TRUE(CR.ok());
  for (const auto &F : CR.Prog->functions()) {
    AllocOptions AO;
    AO.K = 3; // the hardest configuration
    RapAllocator RA(*F, AO);
    InterferenceGraph Final = RA.allocRegion(F->root());
    auto Violations = verifyAssignment(*F, Final);
    std::string Report;
    for (const auto &V : Violations)
      Report += V.Text + "\n";
    EXPECT_TRUE(Violations.empty()) << F->name() << ":\n" << Report;

    // Every referenced register must have received a color.
    LinearCode Code = linearize(*F);
    for (const Instr *I : Code.Instrs) {
      for (Reg R : I->Src)
        EXPECT_GE(Final.colorOf(R), 0) << F->name() << ": " << I->str();
      if (I->hasDef()) {
        EXPECT_GE(Final.colorOf(I->Dst), 0)
            << F->name() << ": " << I->str();
      }
    }
  }
}

std::string invName(const ::testing::TestParamInfo<int> &Info) {
  return benchPrograms()[Info.param].Name;
}

INSTANTIATE_TEST_SUITE_P(
    Table1, AllocInvariants,
    ::testing::Range(0, static_cast<int>(benchPrograms().size())), invName);

} // namespace
