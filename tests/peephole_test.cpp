//===- tests/peephole_test.cpp - Figure 6 patterns -----------------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One test per Figure 6 pattern, on hand-built physical code, plus the
/// invalidation cases ("no redef of r2" / intervening stores) that must
/// block the rewrite.
///
//===----------------------------------------------------------------------===//

#include "ir/Linearize.h"
#include "regalloc/Peephole.h"

#include "gtest/gtest.h"

using namespace rap;

namespace {

/// Builds a one-block function from a list of instructions.
struct FuncBuilder {
  IlocFunction F{"test"};
  PdgNode *Stmt = nullptr;

  FuncBuilder() {
    PdgNode *Root = F.createNode(PdgNodeKind::Region);
    F.setRoot(Root);
    Stmt = F.createNode(PdgNodeKind::Statement);
    Stmt->Parent = Root;
    Root->Children.push_back(Stmt);
    // Slots used by the tests.
    F.newSpillSlot();
    F.newSpillSlot();
  }

  Instr *ldm(Reg Dst, int Slot) {
    Instr *I = F.createInstr(Opcode::LdSpill);
    I->Dst = Dst;
    I->Slot = Slot;
    Stmt->Code.push_back(I);
    return I;
  }
  Instr *stm(int Slot, Reg Src) {
    Instr *I = F.createInstr(Opcode::StSpill);
    I->Slot = Slot;
    I->Src = {Src};
    Stmt->Code.push_back(I);
    return I;
  }
  Instr *mv(Reg Dst, Reg Src) {
    Instr *I = F.createInstr(Opcode::Mv);
    I->Dst = Dst;
    I->Src = {Src};
    Stmt->Code.push_back(I);
    return I;
  }
  Instr *add(Reg Dst, Reg A, Reg B) {
    Instr *I = F.createInstr(Opcode::Add);
    I->Dst = Dst;
    I->Src = {A, B};
    Stmt->Code.push_back(I);
    return I;
  }
  Instr *ret(Reg R) {
    Instr *I = F.createInstr(Opcode::Ret);
    I->Src = {R};
    Stmt->Code.push_back(I);
    return I;
  }

  PeepholeResult finish() {
    F.setAllocated(4);
    return peepholeSpillCleanup(F);
  }

  std::vector<Opcode> opcodes() {
    std::vector<Opcode> Out;
    for (Instr *I : linearize(F).Instrs)
      Out.push_back(I->Op);
    return Out;
  }
};

TEST(PeepholeFig6, Pattern1DuplicateLoadRemoved) {
  FuncBuilder B;
  B.ldm(2, 0);
  B.add(3, 2, 2); // uses r2, no redef
  B.ldm(2, 0);    // redundant
  B.ret(2);
  PeepholeResult R = B.finish();
  EXPECT_EQ(R.RemovedLoads, 1u);
  EXPECT_EQ(B.opcodes(), (std::vector<Opcode>{Opcode::LdSpill, Opcode::Add,
                                              Opcode::Ret}));
}

TEST(PeepholeFig6, Pattern2LoadToOtherRegisterBecomesCopy) {
  FuncBuilder B;
  B.ldm(2, 0);
  B.ldm(3, 0); // same slot, different register -> mv r3, r2
  B.add(1, 2, 3);
  B.ret(1);
  PeepholeResult R = B.finish();
  EXPECT_EQ(R.LoadsToCopies, 1u);
  auto Ops = B.opcodes();
  ASSERT_EQ(Ops.size(), 4u);
  EXPECT_EQ(Ops[1], Opcode::Mv);
}

TEST(PeepholeFig6, Pattern3StoreBackRemoved) {
  FuncBuilder B;
  B.ldm(2, 0);
  B.add(3, 2, 2);
  B.stm(0, 2); // stores the value the slot already has
  B.ret(3);
  PeepholeResult R = B.finish();
  EXPECT_EQ(R.RemovedStores, 1u);
}

TEST(PeepholeFig6, Pattern4ReloadAfterStoreRemoved) {
  FuncBuilder B;
  B.stm(0, 2);
  B.add(3, 2, 2);
  B.ldm(2, 0); // r2 still holds the stored value
  B.ret(2);
  PeepholeResult R = B.finish();
  EXPECT_EQ(R.RemovedLoads, 1u);
}

TEST(PeepholeFig6, Pattern5StoreThroughCopyRemoved) {
  FuncBuilder B;
  B.stm(0, 2);
  B.mv(3, 2); // r3 = r2: both hold the slot's value
  B.stm(0, 3);
  B.ret(3);
  PeepholeResult R = B.finish();
  EXPECT_EQ(R.RemovedStores, 1u);
}

TEST(PeepholeFig6, RedefinitionBlocksLoadRemoval) {
  FuncBuilder B;
  B.ldm(2, 0);
  B.add(2, 2, 2); // redefines r2
  B.ldm(2, 0);    // must stay
  B.ret(2);
  PeepholeResult R = B.finish();
  EXPECT_EQ(R.RemovedLoads, 0u);
  EXPECT_EQ(R.LoadsToCopies, 0u);
}

TEST(PeepholeFig6, InterveningStoreBlocksRemoval) {
  FuncBuilder B;
  B.ldm(2, 0);
  B.stm(0, 3); // the slot changes; r2 is stale
  B.ldm(2, 0); // must stay
  B.ret(2);
  PeepholeResult R = B.finish();
  EXPECT_EQ(R.RemovedLoads, 0u);
}

TEST(PeepholeFig6, DifferentSlotsDoNotAlias) {
  FuncBuilder B;
  B.ldm(2, 0);
  B.ldm(3, 1); // a different slot: no rewrite possible
  B.add(1, 2, 3);
  B.ret(1);
  PeepholeResult R = B.finish();
  EXPECT_EQ(R.RemovedLoads + R.LoadsToCopies + R.RemovedStores, 0u);
}

TEST(PeepholeFig6, CopyChainPropagatesEquivalence) {
  FuncBuilder B;
  B.ldm(2, 0);
  B.mv(3, 2);
  B.mv(1, 3);
  B.ldm(1, 0); // r1 already holds the value via the copy chain
  B.ret(1);
  PeepholeResult R = B.finish();
  EXPECT_EQ(R.RemovedLoads, 1u);
}

} // namespace
