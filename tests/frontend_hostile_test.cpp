//===- tests/frontend_hostile_test.cpp - Adversarial frontend inputs ----------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
//
// The crash-free contract, frontend half (DESIGN.md §10): every input in
// this file used to crash, hang, or silently mis-lex some stage of the
// compiler — or plausibly could. The invariant under test is always the
// same: hostile input produces a diagnostic (or compiles cleanly), never a
// signal, an assert, or an unbounded recursion. Each test documents which
// defence it pins down.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "driver/Pipeline.h"
#include "frontend/Parser.h"

#include "gtest/gtest.h"

#include <string>

using namespace rap;
using rap::test::diagnose;

namespace {

/// Runs the whole pipeline (parse..allocate) — the contract covers every
/// stage, not just the one a test aims at.
CompileResult fullCompile(const std::string &Source) {
  CompileOptions Opts;
  Opts.Allocator = AllocatorKind::Rap;
  Opts.Alloc.K = 3;
  Opts.Alloc.FallbackOnError = true;
  return compileMiniC(Source, Opts);
}

//===----------------------------------------------------------------------===//
// Recursion-depth guards (the stack-overflow regressions)
//===----------------------------------------------------------------------===//

TEST(FrontendHostile, DeepParenNestingIsDiagnosedNotCrashed) {
  // ~100k nesting levels used to overflow the parser's stack (~9 frames per
  // level). Now it must stop at Parser::MaxDepth with a diagnostic.
  std::string Src = "int main() { return ";
  Src += std::string(100000, '(');
  Src += "1";
  Src += std::string(100000, ')');
  Src += "; }";
  std::string Errs = diagnose(Src);
  EXPECT_NE(Errs.find("nesting too deep"), std::string::npos) << Errs;
}

TEST(FrontendHostile, DeepBlockNestingIsDiagnosedNotCrashed) {
  std::string Src = "int main() { ";
  Src += std::string(100000, '{');
  Src += "int x = 1;";
  Src += std::string(100000, '}');
  Src += " return 0; }";
  std::string Errs = diagnose(Src);
  EXPECT_NE(Errs.find("nesting too deep"), std::string::npos) << Errs;
}

TEST(FrontendHostile, DeepUnaryChainIsDiagnosedNotCrashed) {
  // parseUnary recurses on itself for each '!' / '-'.
  std::string Src = "int main() { return " + std::string(200000, '!') +
                    "1; }";
  std::string Errs = diagnose(Src);
  EXPECT_NE(Errs.find("nesting too deep"), std::string::npos) << Errs;
}

TEST(FrontendHostile, HugeOperatorChainIsDiagnosedNotCrashed) {
  // "1+1+1+..." parses iteratively but builds a left spine that Sema,
  // lowering, and the Expr destructor all recurse over; the expression-size
  // budget caps it.
  std::string Src = "int main() { return 1";
  for (int I = 0; I != 200000; ++I)
    Src += "+1";
  Src += "; }";
  std::string Errs = diagnose(Src);
  EXPECT_NE(Errs.find("expression too complex"), std::string::npos) << Errs;
}

TEST(FrontendHostile, ModerateNestingStillCompiles) {
  // The guard must not reject reasonable programs: 100 levels is fine.
  std::string Src = "int main() { return ";
  Src += std::string(100, '(');
  Src += "1";
  Src += std::string(100, ')');
  Src += "; }";
  EXPECT_EQ(diagnose(Src), "");
}

//===----------------------------------------------------------------------===//
// Lexer limits
//===----------------------------------------------------------------------===//

TEST(FrontendHostile, OverflowingIntLiteralIsDiagnosed) {
  std::string Errs = diagnose("int main() { return 9223372036854775808; }");
  EXPECT_NE(Errs.find("does not fit in 64 bits"), std::string::npos) << Errs;
  // INT64_MAX itself is fine.
  EXPECT_EQ(diagnose("int main() { return 9223372036854775807; }"), "");
}

TEST(FrontendHostile, MonsterLiteralIsDiagnosedNotCrashed) {
  std::string Src = "int main() { return " + std::string(500000, '9') + "; }";
  std::string Errs = diagnose(Src);
  EXPECT_NE(Errs.find("literal"), std::string::npos) << Errs;
}

TEST(FrontendHostile, UnexpectedBytesAreSkippedNotTruncated) {
  // The lexer used to return Eof at the first bad byte, silently ignoring
  // the rest of the file. Both the first bad byte and anything wrong *after*
  // it must be reported.
  std::string Errs = diagnose("int main() { @ return 0; } $");
  EXPECT_NE(Errs.find("'@'"), std::string::npos) << Errs;
  EXPECT_NE(Errs.find("'$'"), std::string::npos)
      << "input after the first bad byte was dropped:\n"
      << Errs;
}

TEST(FrontendHostile, NonAsciiBytesAreDiagnosedByValue) {
  std::string Src = "int main() { return 0; } \xf0\x9f\x92\xa9";
  std::string Errs = diagnose(Src);
  EXPECT_NE(Errs.find("0x"), std::string::npos)
      << "non-printable bytes should be reported in hex:\n"
      << Errs;
}

TEST(FrontendHostile, StringLiteralIsRejectedNotMisLexed) {
  std::string Errs = diagnose("int main() { return \"hi\"; }");
  EXPECT_NE(Errs.find("literal"), std::string::npos) << Errs;
}

TEST(FrontendHostile, UnterminatedStringIsDiagnosed) {
  std::string Errs = diagnose("int main() { return \"unclosed; }");
  EXPECT_NE(Errs.find("unterminated"), std::string::npos) << Errs;
}

TEST(FrontendHostile, UnterminatedBlockCommentIsDiagnosed) {
  std::string Errs = diagnose("int main() { return 0; } /* never closed");
  EXPECT_NE(Errs.find("unterminated"), std::string::npos) << Errs;
}

//===----------------------------------------------------------------------===//
// Truncations and degenerate files
//===----------------------------------------------------------------------===//

TEST(FrontendHostile, EmptyFileCompiles) {
  // No functions is legal MiniC; running it is the interpreter's no-entry
  // trap, not a frontend problem.
  EXPECT_EQ(diagnose(""), "");
}

TEST(FrontendHostile, TruncatedInputsAllDiagnoseCleanly) {
  // Every prefix of a valid program must produce a diagnostic or compile;
  // this sweeps the "file cut off mid-token / mid-construct" space.
  const std::string Full = "int g[4];\n"
                           "int f(int a, int b) { return a % (b + 1); }\n"
                           "int main() {\n"
                           "  int x = 41;\n"
                           "  for (int i = 0; i < 4; i = i + 1) { g[i] = x; }\n"
                           "  return f(x, g[3]) + 1;\n"
                           "}\n";
  for (size_t Len = 0; Len <= Full.size(); ++Len) {
    std::string Prefix = Full.substr(0, Len);
    CompileResult CR = fullCompile(Prefix); // must not crash or hang
    if (!CR.ok()) {
      EXPECT_FALSE(CR.Errors.empty())
          << "failed compile with no diagnostics at prefix length " << Len;
    }
  }
}

TEST(FrontendHostile, DiagnosticFloodIsCapped) {
  // One error per byte for a megabyte of garbage must not materialize a
  // gigabyte of diagnostic text.
  std::string Src(1 << 20, '@');
  DiagnosticEngine Diags;
  Lexer Lex(Src, Diags);
  (void)Lex.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), Src.size());
  EXPECT_LE(Diags.diagnostics().size(), 256u);
  EXPECT_NE(Diags.str().find("more errors (suppressed)"), std::string::npos);
}

TEST(FrontendHostile, InternalLoweringErrorIsContainedByPipeline) {
  // compileMiniC's catch-all: whatever escapes a stage becomes a failed
  // compile, never a terminate(). Exercised here via the public contract on
  // a battery of structurally broken inputs.
  const char *Hostile[] = {
      "int main() { return (; }",
      "int f( { } int main() { return f(); }",
      "} } } int main() { return 0; } { { {",
      "int main() { for (;;) return 0; }",
      "int main() { int int = 3; return int; }",
      "void v() {} int main() { return v() + 1; }",
  };
  for (const char *Src : Hostile) {
    CompileResult CR = fullCompile(Src);
    if (!CR.ok()) {
      EXPECT_FALSE(CR.Errors.empty()) << Src;
    }
  }
}

} // namespace
