//===- tests/interp_test.cpp - Interpreter unit tests -------------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "interp/Interpreter.h"

#include "gtest/gtest.h"

using namespace rap;
using rap::test::compile;

namespace {

RunResult run(const std::string &Src) {
  auto Prog = compile(Src);
  if (!Prog) {
    RunResult R;
    R.Error = "compile failed";
    return R;
  }
  Interpreter I(*Prog);
  return I.run();
}

TEST(Interp, IntegerArithmetic) {
  RunResult R = run("int main() { return (7 + 3) * 2 - 5 / 2 - 9 % 4; }");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.ReturnValue.asInt(), 20 - 2 - 1);
}

TEST(Interp, TruncatingDivisionMatchesC) {
  RunResult R = run("int main() { return (-7) / 2 * 100 + (-7) % 2; }");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.ReturnValue.asInt(), -3 * 100 + -1) << "C semantics";
}

TEST(Interp, DivisionByZeroIsRuntimeError) {
  RunResult R = run("int main() { int z = 0; return 1 / z; }");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("division by zero"), std::string::npos);
}

TEST(Interp, ModuloByZeroIsRuntimeError) {
  RunResult R = run("int main() { int z = 0; return 1 % z; }");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("modulo by zero"), std::string::npos);
}

TEST(Interp, FloatArithmeticAndConversion) {
  RunResult R = run(R"(
    int main() {
      float x = 2.5;
      float y = x * 4.0 - 1.0 / 2.0;  /* 9.5 */
      return y * 2.0;                 /* f2i(19.0) */
    }
  )");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.ReturnValue.asInt(), 19);
}

TEST(Interp, ComparisonChainsAndLogic) {
  RunResult R = run(R"(
    int main() {
      int a = 3; int b = 5;
      int r = 0;
      if (a < b) { r = r + 1; }
      if (a <= 3) { r = r + 10; }
      if (b > 4 && a != b) { r = r + 100; }
      if (a == 4 || b >= 5) { r = r + 1000; }
      if (!(a == b)) { r = r + 10000; }
      return r;
    }
  )");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.ReturnValue.asInt(), 11111);
}

TEST(Interp, ArrayOutOfBoundsLoadCaught) {
  RunResult R = run(R"(
    int a[4];
    int main() { int i = 9; return a[i]; }
  )");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("out of bounds"), std::string::npos);
}

TEST(Interp, ArrayNegativeIndexCaught) {
  RunResult R = run(R"(
    int a[4];
    int main() { int i = -1; a[i] = 3; return 0; }
  )");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("out of bounds"), std::string::npos);
}

TEST(Interp, AdjacentArraysDoNotBleed) {
  // a[4] would land in b's storage if bounds were per-memory instead of
  // per-array.
  RunResult R = run(R"(
    int a[4];
    int b[4];
    int main() { int i = 4; a[i] = 77; return b[0]; }
  )");
  EXPECT_FALSE(R.Ok) << "strict per-array bounds";
}

TEST(Interp, FuelLimitStopsInfiniteLoop) {
  auto Prog = compile("int main() { while (1 == 1) { } return 0; }");
  ASSERT_NE(Prog, nullptr);
  Interpreter I(*Prog);
  RunResult R = I.run("main", /*Fuel=*/10000);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("fuel"), std::string::npos);
}

TEST(Interp, CountersMatchHandComputation) {
  // 4 iterations x (1 store + 1 load) on the array + known overhead.
  RunResult R = run(R"(
    int a[4];
    int main() {
      int s = 0;
      for (int i = 0; i < 4; i = i + 1) {
        a[i] = i;
        s = s + a[i];
      }
      return s;
    }
  )");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.ReturnValue.asInt(), 6);
  EXPECT_EQ(R.Stats.Stores, 4u);
  EXPECT_EQ(R.Stats.Loads, 4u);
  EXPECT_EQ(R.Stats.SpillLoads, 0u) << "unallocated code has no spills";
  EXPECT_GT(R.Stats.Cycles, 8u);
}

TEST(Interp, RecursionDepthTracked) {
  RunResult R = run(R"(
    int down(int n) {
      if (n == 0) { return 0; }
      return down(n - 1) + 1;
    }
    int main() { return down(40); }
  )");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.ReturnValue.asInt(), 40);
  EXPECT_EQ(R.Stats.Calls, 41u);
  EXPECT_GE(R.Stats.MaxCallDepth, 41u);
}

TEST(Interp, FrameLocalityOfLocalsAcrossCalls) {
  // Each activation gets its own register window: the callee cannot
  // clobber the caller's locals.
  RunResult R = run(R"(
    int clobber(int x) {
      int a = 999; int b = 888; int c = 777;
      return a + b + c + x;
    }
    int main() {
      int a = 1; int b = 2; int c = 3;
      int r = clobber(5);
      return a * 100 + b * 10 + c + r % 10;
    }
  )");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.ReturnValue.asInt(), 123 + (999 + 888 + 777 + 5) % 10);
}

TEST(Interp, GlobalsSharedAcrossCalls) {
  RunResult R = run(R"(
    int g;
    void bump() { g = g + 1; }
    int main() {
      g = 0;
      bump(); bump(); bump();
      return g;
    }
  )");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.ReturnValue.asInt(), 3);
}

TEST(Interp, VoidFunctionFallsOffEnd) {
  RunResult R = run(R"(
    int g;
    void set(int v) { g = v; }
    int main() { set(42); return g; }
  )");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.ReturnValue.asInt(), 42);
}

TEST(Interp, MissingEntryReported) {
  auto Prog = compile("int notmain() { return 1; }");
  ASSERT_NE(Prog, nullptr);
  Interpreter I(*Prog);
  RunResult R = I.run();
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("not found"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Trap taxonomy: every runtime failure carries a structured Trap whose kind
// names are a stable interface (the fuzzer keys failure signatures on them,
// and repro artifacts embed them).
//===----------------------------------------------------------------------===//

TEST(Interp, DivideByZeroTrapIsStructured) {
  RunResult R = run("int main() { int z = 0; return 1 / z; }");
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.TrapInfo.Kind, TrapKind::DivideByZero);
  EXPECT_EQ(R.TrapInfo.Function, "main");
  // The legacy Error string must keep carrying the trap's detail so older
  // callers (and tests) that grep Error still work.
  EXPECT_NE(R.Error.find(R.TrapInfo.Detail), std::string::npos)
      << R.Error << " vs " << R.TrapInfo.Detail;
  // str() renders "kind @function+pc: detail".
  EXPECT_NE(R.TrapInfo.str().find("div-by-zero @main+"), std::string::npos)
      << R.TrapInfo.str();
}

TEST(Interp, OutOfBoundsTrapIsStructured) {
  RunResult R = run(R"(
    int a[4];
    int main() { int i = 9; return a[i]; }
  )");
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.TrapInfo.Kind, TrapKind::OutOfBounds);
  EXPECT_NE(R.TrapInfo.Detail.find("9"), std::string::npos)
      << "detail should name the offending index: " << R.TrapInfo.Detail;
}

TEST(Interp, FuelExhaustionTrapIsStructured) {
  auto Prog = compile("int main() { while (1 == 1) { } return 0; }");
  ASSERT_NE(Prog, nullptr);
  Interpreter I(*Prog);
  RunResult R = I.run("main", /*Fuel=*/10000);
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.TrapInfo.Kind, TrapKind::FuelExhausted);
  EXPECT_EQ(R.TrapInfo.Function, "main");
}

TEST(Interp, MissingEntryTrapIsStructured) {
  auto Prog = compile("int notmain() { return 1; }");
  ASSERT_NE(Prog, nullptr);
  Interpreter I(*Prog);
  RunResult R = I.run();
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.TrapInfo.Kind, TrapKind::NoEntry);
}

TEST(Interp, StackOverflowTrapIsStructured) {
  RunResult R = run(R"(
    int down(int n) { return down(n - 1); }
    int main() { return down(1); }
  )");
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.TrapInfo.Kind, TrapKind::StackOverflow);
}

TEST(Interp, SuccessfulRunHasNoTrap) {
  RunResult R = run("int main() { return 7; }");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.TrapInfo.Kind, TrapKind::None);
}

TEST(Interp, TrapKindNamesAreStable) {
  // These strings appear in fuzz failure signatures and in on-disk repro
  // artifacts; renaming one invalidates recorded repros.
  EXPECT_STREQ(trapKindName(TrapKind::None), "none");
  EXPECT_STREQ(trapKindName(TrapKind::DivideByZero), "div-by-zero");
  EXPECT_STREQ(trapKindName(TrapKind::OutOfBounds), "out-of-bounds");
  EXPECT_STREQ(trapKindName(TrapKind::FuelExhausted), "fuel-exhausted");
  EXPECT_STREQ(trapKindName(TrapKind::StackOverflow), "stack-overflow");
  EXPECT_STREQ(trapKindName(TrapKind::NoEntry), "no-entry");
  EXPECT_STREQ(trapKindName(TrapKind::BadCall), "bad-call");
}

TEST(Interp, UnaryOperators) {
  RunResult R = run(R"(
    int main() {
      int a = 5;
      float f = 2.5;
      int notted = !0 * 10 + !7;
      return -a + notted + (0 - f) * 2.0;
    }
  )");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.ReturnValue.asInt(), -5 + 10 + 0 - 5);
}

} // namespace
