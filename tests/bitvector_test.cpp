//===- tests/bitvector_test.cpp - BitVector unit tests ----------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "support/BitVector.h"

#include "gtest/gtest.h"

using namespace rap;

namespace {

TEST(BitVector, StartsEmpty) {
  BitVector B(100);
  EXPECT_TRUE(B.empty());
  EXPECT_EQ(B.count(), 0u);
  for (unsigned I = 0; I < 100; ++I)
    EXPECT_FALSE(B.test(I));
}

TEST(BitVector, SetTestReset) {
  BitVector B(70);
  B.set(0);
  B.set(63);
  B.set(64); // crosses the word boundary
  B.set(69);
  EXPECT_TRUE(B.test(0));
  EXPECT_TRUE(B.test(63));
  EXPECT_TRUE(B.test(64));
  EXPECT_TRUE(B.test(69));
  EXPECT_FALSE(B.test(1));
  EXPECT_EQ(B.count(), 4u);
  B.reset(63);
  EXPECT_FALSE(B.test(63));
  EXPECT_EQ(B.count(), 3u);
}

TEST(BitVector, UnionReportsChange) {
  BitVector A(10), B(10);
  B.set(3);
  B.set(7);
  EXPECT_TRUE(A.unionWith(B));
  EXPECT_FALSE(A.unionWith(B)) << "second union is a no-op";
  EXPECT_TRUE(A.test(3));
  EXPECT_TRUE(A.test(7));
}

TEST(BitVector, IntersectAndSubtract) {
  BitVector A(10), B(10);
  A.set(1);
  A.set(2);
  A.set(3);
  B.set(2);
  B.set(3);
  B.set(4);
  BitVector I = A;
  EXPECT_TRUE(I.intersectWith(B));
  EXPECT_EQ(I.count(), 2u);
  EXPECT_TRUE(I.test(2));
  EXPECT_TRUE(I.test(3));

  BitVector D = A;
  EXPECT_TRUE(D.subtract(B));
  EXPECT_EQ(D.count(), 1u);
  EXPECT_TRUE(D.test(1));
}

TEST(BitVector, Intersects) {
  BitVector A(130), B(130);
  A.set(128);
  EXPECT_FALSE(A.intersects(B));
  B.set(128);
  EXPECT_TRUE(A.intersects(B));
}

TEST(BitVector, EqualityIncludesSize) {
  BitVector A(10), B(11);
  EXPECT_NE(A, B);
  BitVector C(10);
  EXPECT_EQ(A, C);
  C.set(5);
  EXPECT_NE(A, C);
}

TEST(BitVector, ForEachVisitsInOrder) {
  BitVector B(200);
  B.set(5);
  B.set(64);
  B.set(199);
  std::vector<unsigned> Seen;
  B.forEach([&](unsigned I) { Seen.push_back(I); });
  EXPECT_EQ(Seen, (std::vector<unsigned>{5, 64, 199}));
  EXPECT_EQ(B.toVector(), Seen);
}

TEST(BitVector, ClearEmptiesAllWords) {
  BitVector B(129);
  B.set(0);
  B.set(128);
  B.clear();
  EXPECT_TRUE(B.empty());
}

TEST(BitVector, ZeroSizedBehaves) {
  BitVector B(0);
  EXPECT_TRUE(B.empty());
  EXPECT_EQ(B.count(), 0u);
  unsigned Calls = 0;
  B.forEach([&](unsigned) { ++Calls; });
  EXPECT_EQ(Calls, 0u);
}

} // namespace
