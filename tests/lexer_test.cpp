//===- tests/lexer_test.cpp - Lexer unit tests -------------------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include "gtest/gtest.h"

using namespace rap;

namespace {

std::vector<Token> lex(const std::string &Src, bool ExpectErrors = false) {
  DiagnosticEngine Diags;
  Lexer L(Src, Diags);
  std::vector<Token> Toks = L.lexAll();
  EXPECT_EQ(Diags.hasErrors(), ExpectErrors) << Diags.str();
  return Toks;
}

std::vector<TokenKind> kinds(const std::vector<Token> &Toks) {
  std::vector<TokenKind> Out;
  for (const Token &T : Toks)
    Out.push_back(T.Kind);
  return Out;
}

TEST(Lexer, EmptyInputIsJustEof) {
  auto Toks = lex("");
  ASSERT_EQ(Toks.size(), 1u);
  EXPECT_EQ(Toks[0].Kind, TokenKind::Eof);
}

TEST(Lexer, KeywordsAndIdentifiers) {
  auto Toks = lex("int float void if else while for return foo _bar x9");
  std::vector<TokenKind> Want = {
      TokenKind::KwInt,      TokenKind::KwFloat, TokenKind::KwVoid,
      TokenKind::KwIf,       TokenKind::KwElse,  TokenKind::KwWhile,
      TokenKind::KwFor,      TokenKind::KwReturn,
      TokenKind::Identifier, TokenKind::Identifier, TokenKind::Identifier,
      TokenKind::Eof};
  EXPECT_EQ(kinds(Toks), Want);
  EXPECT_EQ(Toks[8].Text, "foo");
  EXPECT_EQ(Toks[9].Text, "_bar");
  EXPECT_EQ(Toks[10].Text, "x9");
}

TEST(Lexer, IntegerAndFloatLiterals) {
  auto Toks = lex("42 0 3.5 1e3 2.5e-2 7e+1");
  EXPECT_EQ(Toks[0].Kind, TokenKind::IntLiteral);
  EXPECT_EQ(Toks[0].IntValue, 42);
  EXPECT_EQ(Toks[1].IntValue, 0);
  EXPECT_EQ(Toks[2].Kind, TokenKind::FloatLiteral);
  EXPECT_DOUBLE_EQ(Toks[2].FloatValue, 3.5);
  EXPECT_DOUBLE_EQ(Toks[3].FloatValue, 1000.0);
  EXPECT_DOUBLE_EQ(Toks[4].FloatValue, 0.025);
  EXPECT_DOUBLE_EQ(Toks[5].FloatValue, 70.0);
}

TEST(Lexer, DotWithoutDigitsStaysInteger) {
  DiagnosticEngine Diags;
  Lexer L("123.x", Diags);
  auto Toks = L.lexAll();
  EXPECT_EQ(Toks[0].Kind, TokenKind::IntLiteral);
  EXPECT_EQ(Toks[0].IntValue, 123);
  EXPECT_TRUE(Diags.hasErrors()) << "bare '.' is not a MiniC token";
}

TEST(Lexer, OperatorsIncludingTwoCharacter) {
  auto Toks = lex("+ - * / % = == != < <= > >= && || !");
  std::vector<TokenKind> Want = {
      TokenKind::Plus,    TokenKind::Minus,     TokenKind::Star,
      TokenKind::Slash,   TokenKind::Percent,   TokenKind::Assign,
      TokenKind::EqEq,    TokenKind::BangEq,    TokenKind::Less,
      TokenKind::LessEq,  TokenKind::Greater,   TokenKind::GreaterEq,
      TokenKind::AmpAmp,  TokenKind::PipePipe,  TokenKind::Bang,
      TokenKind::Eof};
  EXPECT_EQ(kinds(Toks), Want);
}

TEST(Lexer, LineCommentsSkipped) {
  auto Toks = lex("a // the rest is ignored == != \n b");
  ASSERT_EQ(Toks.size(), 3u);
  EXPECT_EQ(Toks[0].Text, "a");
  EXPECT_EQ(Toks[1].Text, "b");
}

TEST(Lexer, BlockCommentsSkippedAcrossLines) {
  auto Toks = lex("a /* x\n y \n z */ b");
  ASSERT_EQ(Toks.size(), 3u);
  EXPECT_EQ(Toks[1].Text, "b");
}

TEST(Lexer, UnterminatedBlockCommentIsError) {
  DiagnosticEngine Diags;
  Lexer L("a /* never closed", Diags);
  L.lexAll();
  ASSERT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.str().find("unterminated"), std::string::npos);
}

TEST(Lexer, TracksLineAndColumn) {
  auto Toks = lex("a\n  b");
  EXPECT_EQ(Toks[0].Loc.Line, 1);
  EXPECT_EQ(Toks[0].Loc.Col, 1);
  EXPECT_EQ(Toks[1].Loc.Line, 2);
  EXPECT_EQ(Toks[1].Loc.Col, 3);
}

TEST(Lexer, UnknownCharacterReported) {
  DiagnosticEngine Diags;
  Lexer L("a @ b", Diags);
  L.lexAll();
  ASSERT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.str().find("'@'"), std::string::npos);
}

TEST(Lexer, SingleAmpersandIsError) {
  DiagnosticEngine Diags;
  Lexer L("a & b", Diags);
  L.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, PunctuationRoundTrip) {
  auto Toks = lex("( ) { } [ ] , ;");
  std::vector<TokenKind> Want = {
      TokenKind::LParen,   TokenKind::RParen, TokenKind::LBrace,
      TokenKind::RBrace,   TokenKind::LBracket, TokenKind::RBracket,
      TokenKind::Comma,    TokenKind::Semi,   TokenKind::Eof};
  EXPECT_EQ(kinds(Toks), Want);
}

} // namespace
