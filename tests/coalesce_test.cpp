//===- tests/coalesce_test.cpp - Conservative coalescing ----------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "driver/Pipeline.h"
#include "interp/Interpreter.h"
#include "regalloc/Coalesce.h"

#include "gtest/gtest.h"

using namespace rap;
using rap::test::compile;

namespace {

TEST(Coalesce, MergesCopyPairWithoutInterference) {
  InterferenceGraph G;
  G.getOrCreateNode(1);
  G.getOrCreateNode(2);
  IlocFunction F("t");
  Instr *Mv = F.createInstr(Opcode::Mv);
  Mv->Dst = 2;
  Mv->Src = {1};
  std::vector<Instr *> Code = {Mv};
  EXPECT_EQ(coalesceConservatively(G, Code, 3), 1u);
  EXPECT_EQ(G.nodeOf(1), G.nodeOf(2));
}

TEST(Coalesce, InterferingPairStaysSplit) {
  InterferenceGraph G;
  G.getOrCreateNode(1);
  G.getOrCreateNode(2);
  G.addEdge(1, 2);
  IlocFunction F("t");
  Instr *Mv = F.createInstr(Opcode::Mv);
  Mv->Dst = 2;
  Mv->Src = {1};
  std::vector<Instr *> Code = {Mv};
  EXPECT_EQ(coalesceConservatively(G, Code, 3), 0u);
  EXPECT_NE(G.nodeOf(1), G.nodeOf(2));
}

TEST(Coalesce, BriggsCriterionBlocksRiskyMerge) {
  // dst and src each interfere with distinct high-degree neighbors; the
  // union would have K significant neighbors -> unsafe at K=2.
  InterferenceGraph G;
  for (Reg R = 1; R <= 6; ++R)
    G.getOrCreateNode(R);
  // High-degree neighbors 3 and 4 (give each two more edges).
  G.addEdge(3, 5);
  G.addEdge(3, 6);
  G.addEdge(4, 5);
  G.addEdge(4, 6);
  G.addEdge(1, 3);
  G.addEdge(2, 4);
  IlocFunction F("t");
  Instr *Mv = F.createInstr(Opcode::Mv);
  Mv->Dst = 2;
  Mv->Src = {1};
  std::vector<Instr *> Code = {Mv};
  EXPECT_EQ(coalesceConservatively(G, Code, 2), 0u)
      << "two significant neighbors at K=2 fail the Briggs test";
  EXPECT_EQ(coalesceConservatively(G, Code, 3), 1u)
      << "at K=3 the same union is safe";
}

TEST(Coalesce, GuardCanVeto) {
  InterferenceGraph G;
  G.getOrCreateNode(1);
  G.getOrCreateNode(2);
  IlocFunction F("t");
  Instr *Mv = F.createInstr(Opcode::Mv);
  Mv->Dst = 2;
  Mv->Src = {1};
  std::vector<Instr *> Code = {Mv};
  EXPECT_EQ(coalesceConservatively(G, Code, 3,
                                   [](unsigned, unsigned) { return false; }),
            0u);
}

TEST(Coalesce, RemovesExecutedCopiesEndToEnd) {
  const char *Src = R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 30; i = i + 1) {
        int t = s + i;
        s = t;          /* copy chain the coalescer should erase */
      }
      return s;
    }
  )";
  CompileOptions Ref;
  RunResult RefRun = compileAndRun(Src, Ref);
  ASSERT_TRUE(RefRun.Ok);

  uint64_t Copies[2];
  for (int WithCoalesce = 0; WithCoalesce <= 1; ++WithCoalesce) {
    for (AllocatorKind Kind : {AllocatorKind::Gra, AllocatorKind::Rap}) {
      CompileOptions O;
      O.Allocator = Kind;
      O.Alloc.K = 5;
      O.Alloc.Coalesce = WithCoalesce;
      RunResult R = compileAndRun(Src, O);
      ASSERT_TRUE(R.Ok) << R.Error;
      ASSERT_EQ(R.ReturnValue.asInt(), RefRun.ReturnValue.asInt());
      if (Kind == AllocatorKind::Gra)
        Copies[WithCoalesce] = R.Stats.Copies;
    }
  }
  EXPECT_LE(Copies[1], Copies[0])
      << "coalescing never increases executed copies";
}

TEST(Coalesce, CorrectAcrossBenchmarkKindsAndK) {
  // A pressure-heavy program where coalescing decisions interact with
  // spilling; both allocators must stay correct with it enabled.
  const char *Src = R"(
    int a[16];
    int f(int x, int y) {
      int u = x; int v = y;
      int w = u * v + u - v;
      return w;
    }
    int main() {
      int s = 0;
      for (int i = 0; i < 16; i = i + 1) { a[i] = i * 3 - 7; }
      for (int i = 0; i < 15; i = i + 1) {
        int p = a[i];
        int q = a[i + 1];
        s = s + f(p, q);
      }
      return s;
    }
  )";
  CompileOptions Ref;
  RunResult RefRun = compileAndRun(Src, Ref);
  ASSERT_TRUE(RefRun.Ok);
  for (AllocatorKind Kind : {AllocatorKind::Gra, AllocatorKind::Rap}) {
    for (unsigned K : {3u, 5u, 9u}) {
      CompileOptions O;
      O.Allocator = Kind;
      O.Alloc.K = K;
      O.Alloc.Coalesce = true;
      RunResult R = compileAndRun(Src, O);
      ASSERT_TRUE(R.Ok) << R.Error;
      EXPECT_EQ(R.ReturnValue.asInt(), RefRun.ReturnValue.asInt())
          << (Kind == AllocatorKind::Gra ? "gra" : "rap") << " k=" << K;
    }
  }
}

} // namespace
