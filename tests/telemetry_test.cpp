//===- tests/telemetry_test.cpp - Telemetry subsystem lock-down -------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Locks down the telemetry subsystem (support/Stats.h, DESIGN.md §9):
///
///  * the named-counter aggregate mirrors the AllocStats ledger exactly,
///  * the spill-instruction ledger balances against the final code — every
///    ldm/stm in the output is accounted for by an insertion minus the
///    removals the cleanup phases claim (checked over the whole Table 1
///    suite, both allocators, spilling and non-spilling k),
///  * allocator-reported spill counts cross-check against what the
///    interpreter actually executes,
///  * attaching telemetry changes nothing: allocated code and stats are
///    byte-identical with and without a registry,
///  * phase slices are well-formed (named, non-negative, region-attributed).
///
//===----------------------------------------------------------------------===//

#include "benchprogs/BenchPrograms.h"
#include "driver/Pipeline.h"
#include "support/Stats.h"

#include "gtest/gtest.h"

#include <cstdint>
#include <string>
#include <vector>

using namespace rap;

namespace {

/// Loop nest plus enough simultaneously-live scalars to spill at small k:
/// exercises every RAP phase (spilling, movement, peephole, cleanup).
const char *SpillySource = R"(
int work(int n) {
  int a = 1; int b = 2; int c = 3; int d = 4;
  int e = 5; int f = 6; int g = 7; int h = 8;
  int i;
  for (i = 0; i < n; i = i + 1) {
    a = a + b; b = b + c; c = c + d; d = d + e;
    e = e + f; f = f + g; g = g + h; h = h + a;
  }
  return a + b + c + d + e + f + g + h;
}

int main() {
  return work(12);
}
)";

/// No branches anywhere: every instruction in the allocated binary executes
/// exactly once, so static spill-op counts equal dynamic executed counts.
const char *StraightLineSource = R"(
int main() {
  int a = 1; int b = 2; int c = 3; int d = 4;
  int e = 5; int f = 6; int g = 7; int h = 8;
  int i = 9; int j = 10;
  int s1 = a + b + c + d + e;
  int s2 = f + g + h + i + j;
  int s3 = s1 * s2 + a * h;
  int s4 = s3 - b * g + c * f;
  return s4 + s1 - s2 + d * e;
}
)";

struct SpillOpCount {
  uint64_t Loads = 0;  ///< ldm in the final code
  uint64_t Stores = 0; ///< stm in the final code
};

SpillOpCount countSpillOps(const IlocProgram &Prog) {
  SpillOpCount C;
  for (const auto &F : Prog.functions()) {
    F->root()->forEachInstr([&](Instr *I) {
      C.Loads += I->Op == Opcode::LdSpill;
      C.Stores += I->Op == Opcode::StSpill;
    });
  }
  return C;
}

CompileResult compileWith(const std::string &Source, AllocatorKind Kind,
                          unsigned K, telemetry::Telemetry *Telem = nullptr,
                          unsigned Threads = 1) {
  CompileOptions Options;
  Options.Allocator = Kind;
  Options.Alloc.K = K;
  Options.Alloc.Threads = Threads;
  Options.Alloc.Telem = Telem;
  return compileMiniC(Source, Options);
}

/// The ledger from AllocOutcome.h: what the books say must remain in the
/// output after all insertions and removals.
int64_t expectedLoads(const AllocStats &S) {
  return int64_t(S.SpillLoadsInserted) + S.HoistedLoads -
         S.MovementRemovedLoads - S.PeepholeRemovedLoads -
         S.PeepholeLoadsToCopies - S.CleanupRemovedLoads;
}
int64_t expectedStores(const AllocStats &S) {
  return int64_t(S.SpillStoresInserted) + S.SunkStores -
         S.MovementRemovedStores - S.PeepholeRemovedStores -
         S.CleanupRemovedStores;
}

uint64_t counterOr0(const telemetry::Aggregate &A, const char *Name) {
  auto It = A.Counters.find(Name);
  return It == A.Counters.end() ? 0 : It->second;
}

//===----------------------------------------------------------------------===//
// Counter aggregate mirrors the AllocStats ledger
//===----------------------------------------------------------------------===//

TEST(Telemetry, CountersMirrorAllocStatsRap) {
  telemetry::Telemetry Telem;
  CompileResult CR = compileWith(SpillySource, AllocatorKind::Rap, 3, &Telem);
  ASSERT_TRUE(CR.ok()) << CR.Errors;
  const AllocStats &S = CR.Alloc;
  const telemetry::Aggregate &A = CR.Telemetry;

  EXPECT_EQ(A.NumFunctions, CR.Prog->functions().size());
  EXPECT_EQ(counterOr0(A, "rap.graph_builds"), S.GraphBuilds);
  EXPECT_EQ(counterOr0(A, "graph.max_nodes"), S.MaxGraphNodes);
  EXPECT_EQ(counterOr0(A, "rap.regions_processed"), S.RegionsProcessed);
  EXPECT_EQ(counterOr0(A, "rap.spill_rounds"), S.SpillRounds);
  EXPECT_EQ(counterOr0(A, "movement.hoisted_loads"), S.HoistedLoads);
  EXPECT_EQ(counterOr0(A, "movement.sunk_stores"), S.SunkStores);
  EXPECT_EQ(counterOr0(A, "movement.removed_loads"), S.MovementRemovedLoads);
  EXPECT_EQ(counterOr0(A, "movement.removed_stores"),
            S.MovementRemovedStores);
  EXPECT_EQ(counterOr0(A, "peephole.removed_loads"), S.PeepholeRemovedLoads);
  EXPECT_EQ(counterOr0(A, "peephole.removed_stores"),
            S.PeepholeRemovedStores);
  EXPECT_EQ(counterOr0(A, "peephole.loads_to_copies"),
            S.PeepholeLoadsToCopies);
  EXPECT_EQ(counterOr0(A, "cleanup.removed_loads") +
                counterOr0(A, "cleanup.loads_to_copies"),
            S.CleanupRemovedLoads);
  EXPECT_EQ(counterOr0(A, "cleanup.removed_stores"), S.CleanupRemovedStores);
  EXPECT_EQ(counterOr0(A, "rewrite.copies_deleted"), S.CopiesDeleted);

  // The pressure loop must actually have exercised the spill machinery for
  // this test to mean anything.
  EXPECT_GT(S.SpillRounds, 0u);
  EXPECT_GT(S.SpillLoadsInserted, 0u);
}

TEST(Telemetry, CountersMirrorAllocStatsGra) {
  telemetry::Telemetry Telem;
  CompileResult CR = compileWith(SpillySource, AllocatorKind::Gra, 3, &Telem);
  ASSERT_TRUE(CR.ok()) << CR.Errors;
  const telemetry::Aggregate &A = CR.Telemetry;
  EXPECT_EQ(A.NumFunctions, CR.Prog->functions().size());
  EXPECT_EQ(counterOr0(A, "graph.max_nodes"), CR.Alloc.MaxGraphNodes);
  EXPECT_GT(counterOr0(A, "gra.rounds"), 0u);
  EXPECT_EQ(counterOr0(A, "alloc.fallbacks"), 0u);
}

TEST(Telemetry, GoldenNoSpillProgram) {
  // A handful of scalars colors at k = 9 without spilling; the golden
  // expectation is a completely quiet spill ledger, no spill-round counter
  // ever recorded, and spill-free output code.
  const char *TinySource = R"(
int main() {
  int a = 1; int b = 2; int c = 3;
  return a + b * c;
}
)";
  telemetry::Telemetry Telem;
  CompileResult CR = compileWith(TinySource, AllocatorKind::Rap, 9, &Telem);
  ASSERT_TRUE(CR.ok()) << CR.Errors;
  EXPECT_EQ(CR.Alloc.SpillRounds, 0u);
  EXPECT_EQ(CR.Alloc.SpilledVRegs, 0u);
  EXPECT_EQ(CR.Alloc.SpillLoadsInserted, 0u);
  EXPECT_EQ(CR.Alloc.SpillStoresInserted, 0u);
  EXPECT_EQ(CR.Telemetry.Counters.count("rap.spill_rounds"), 0u);
  SpillOpCount Ops = countSpillOps(*CR.Prog);
  EXPECT_EQ(Ops.Loads, 0u);
  EXPECT_EQ(Ops.Stores, 0u);
  EXPECT_GT(counterOr0(CR.Telemetry, "rap.regions_processed"), 0u);
}

TEST(Telemetry, MaxCountersFoldWithMaxAcrossFunctions) {
  // graph.max_nodes must aggregate as a high-water mark, not a sum: the
  // program-level value equals the largest per-function record.
  telemetry::Telemetry Telem;
  CompileResult CR = compileWith(SpillySource, AllocatorKind::Rap, 3, &Telem);
  ASSERT_TRUE(CR.ok()) << CR.Errors;
  uint64_t PerFunctionMax = 0, PerFunctionSum = 0;
  for (const auto &[Index, R] : Telem.ordered()) {
    (void)Index;
    auto It = R->Scope.Counters.find("graph.max_nodes");
    if (It == R->Scope.Counters.end())
      continue;
    PerFunctionMax = std::max(PerFunctionMax, It->second);
    PerFunctionSum += It->second;
  }
  EXPECT_EQ(counterOr0(CR.Telemetry, "graph.max_nodes"), PerFunctionMax);
  // With more than one instrumented function the sum would differ — make
  // sure this test would actually catch a sum-fold regression.
  ASSERT_GT(Telem.ordered().size(), 1u);
  EXPECT_GT(PerFunctionSum, PerFunctionMax);
}

//===----------------------------------------------------------------------===//
// The spill-instruction ledger balances against the final code
//===----------------------------------------------------------------------===//

TEST(Telemetry, LedgerBalancesOnTable1Suite) {
  for (const BenchProgram &P : benchPrograms()) {
    for (AllocatorKind Kind : {AllocatorKind::Gra, AllocatorKind::Rap}) {
      for (unsigned K : {3u, 9u}) {
        CompileResult CR = compileWith(P.Source, Kind, K);
        ASSERT_TRUE(CR.ok()) << P.Name << ": " << CR.Errors;
        SpillOpCount Ops = countSpillOps(*CR.Prog);
        const char *KindName = Kind == AllocatorKind::Rap ? "rap" : "gra";
        EXPECT_EQ(int64_t(Ops.Loads), expectedLoads(CR.Alloc))
            << P.Name << " " << KindName << " k=" << K
            << ": load ledger out of balance";
        EXPECT_EQ(int64_t(Ops.Stores), expectedStores(CR.Alloc))
            << P.Name << " " << KindName << " k=" << K
            << ": store ledger out of balance";
      }
    }
  }
}

TEST(Telemetry, LedgerBalancesWithPhasesDisabled) {
  // Each cleanup phase removes ops it must also report; ablating phases one
  // at a time shifts where removals are booked but never unbalances.
  struct Config {
    bool Movement, Peephole, Cleanup;
  };
  for (Config C : {Config{false, false, false}, Config{true, false, false},
                   Config{true, true, false}, Config{true, true, true}}) {
    CompileOptions Options;
    Options.Allocator = AllocatorKind::Rap;
    Options.Alloc.K = 3;
    Options.Alloc.SpillMovement = C.Movement;
    Options.Alloc.Peephole = C.Peephole;
    Options.Alloc.GlobalCleanup = C.Cleanup;
    CompileResult CR = compileMiniC(SpillySource, Options);
    ASSERT_TRUE(CR.ok()) << CR.Errors;
    SpillOpCount Ops = countSpillOps(*CR.Prog);
    EXPECT_EQ(int64_t(Ops.Loads), expectedLoads(CR.Alloc));
    EXPECT_EQ(int64_t(Ops.Stores), expectedStores(CR.Alloc));
  }
}

//===----------------------------------------------------------------------===//
// Interpreter cross-checks: reported spill code is what actually runs
//===----------------------------------------------------------------------===//

TEST(Telemetry, StraightLineStaticEqualsDynamic) {
  // Without branches every instruction executes exactly once, so the
  // allocator's ledger must equal the interpreter's executed counts.
  CompileResult CR = compileWith(StraightLineSource, AllocatorKind::Rap, 3);
  ASSERT_TRUE(CR.ok()) << CR.Errors;
  SpillOpCount Ops = countSpillOps(*CR.Prog);
  ASSERT_GT(Ops.Loads + Ops.Stores, 0u) << "k=3 should force spills here";
  RunResult R = Interpreter(*CR.Prog).run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Stats.SpillLoads, Ops.Loads);
  EXPECT_EQ(R.Stats.SpillStores, Ops.Stores);
  EXPECT_EQ(int64_t(R.Stats.SpillLoads), expectedLoads(CR.Alloc));
  EXPECT_EQ(int64_t(R.Stats.SpillStores), expectedStores(CR.Alloc));
}

TEST(Telemetry, Table1DynamicSpillsConsistent) {
  // On real routines dynamic counts exceed static (loops), but spill code
  // executes iff the ledger says some survived to the output — and the
  // allocated binary must still compute the reference checksum.
  for (const char *Name : {"loop7", "queens", "hsort"}) {
    const BenchProgram *P = findBenchProgram(Name);
    ASSERT_NE(P, nullptr);
    CompileOptions RefOpts;
    RunResult Ref = compileAndRun(P->Source, RefOpts);
    ASSERT_TRUE(Ref.Ok) << Name << ": " << Ref.Error;

    CompileResult CR = compileWith(P->Source, AllocatorKind::Rap, 3);
    ASSERT_TRUE(CR.ok()) << Name << ": " << CR.Errors;
    SpillOpCount Ops = countSpillOps(*CR.Prog);
    RunResult R = Interpreter(*CR.Prog).run();
    ASSERT_TRUE(R.Ok) << Name << ": " << R.Error;
    EXPECT_EQ(R.ReturnValue.asInt(), Ref.ReturnValue.asInt()) << Name;
    EXPECT_EQ(Ops.Loads > 0, R.Stats.SpillLoads > 0) << Name;
    EXPECT_EQ(Ops.Stores > 0, R.Stats.SpillStores > 0) << Name;
    EXPECT_GE(R.Stats.Loads, R.Stats.SpillLoads) << Name;
    EXPECT_GE(R.Stats.Stores, R.Stats.SpillStores) << Name;
  }
}

TEST(Telemetry, PerFunctionBreakdownSumsToTotals) {
  CompileResult CR = compileWith(SpillySource, AllocatorKind::Rap, 3);
  ASSERT_TRUE(CR.ok()) << CR.Errors;
  RunResult R = Interpreter(*CR.Prog).run("main", 500'000'000,
                                          /*CollectPerFunction=*/true);
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_FALSE(R.PerFunction.empty());
  ExecStats Sum;
  for (const auto &[Function, S] : R.PerFunction) {
    bool Known = false;
    for (const auto &F : CR.Prog->functions())
      Known |= F->name() == Function;
    EXPECT_TRUE(Known) << "unknown function in breakdown: " << Function;
    EXPECT_GT(S.Cycles, 0u) << Function;
    Sum.Cycles += S.Cycles;
    Sum.Loads += S.Loads;
    Sum.Stores += S.Stores;
    Sum.SpillLoads += S.SpillLoads;
    Sum.SpillStores += S.SpillStores;
    Sum.Copies += S.Copies;
    Sum.Calls += S.Calls;
  }
  EXPECT_EQ(Sum.Cycles, R.Stats.Cycles);
  EXPECT_EQ(Sum.Loads, R.Stats.Loads);
  EXPECT_EQ(Sum.Stores, R.Stats.Stores);
  EXPECT_EQ(Sum.SpillLoads, R.Stats.SpillLoads);
  EXPECT_EQ(Sum.SpillStores, R.Stats.SpillStores);
  EXPECT_EQ(Sum.Copies, R.Stats.Copies);
  EXPECT_EQ(Sum.Calls, R.Stats.Calls);
}

TEST(Telemetry, PerFunctionBreakdownOffByDefault) {
  CompileResult CR = compileWith(SpillySource, AllocatorKind::Rap, 3);
  ASSERT_TRUE(CR.ok()) << CR.Errors;
  RunResult R = Interpreter(*CR.Prog).run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(R.PerFunction.empty());
}

//===----------------------------------------------------------------------===//
// Disabled telemetry is invisible
//===----------------------------------------------------------------------===//

TEST(Telemetry, DisabledTelemetryChangesNothing) {
  CompileResult Plain = compileWith(SpillySource, AllocatorKind::Rap, 3);
  telemetry::Telemetry Telem;
  CompileResult Instrumented =
      compileWith(SpillySource, AllocatorKind::Rap, 3, &Telem);
  ASSERT_TRUE(Plain.ok() && Instrumented.ok());

  ASSERT_EQ(Plain.Prog->functions().size(),
            Instrumented.Prog->functions().size());
  for (size_t I = 0; I != Plain.Prog->functions().size(); ++I)
    EXPECT_EQ(Plain.Prog->functions()[I]->str(),
              Instrumented.Prog->functions()[I]->str())
        << "telemetry perturbed allocated code of function " << I;
  EXPECT_TRUE(Plain.Alloc.structuralEq(Instrumented.Alloc));

  // No registry attached -> the result carries an empty aggregate.
  EXPECT_EQ(Plain.Telemetry.NumFunctions, 0u);
  EXPECT_TRUE(Plain.Telemetry.Counters.empty());
  EXPECT_GT(Instrumented.Telemetry.NumFunctions, 0u);
}

//===----------------------------------------------------------------------===//
// Phase slices
//===----------------------------------------------------------------------===//

TEST(Telemetry, PhaseSlicesWellFormed) {
  telemetry::Telemetry Telem;
  CompileResult CR = compileWith(SpillySource, AllocatorKind::Rap, 3, &Telem);
  ASSERT_TRUE(CR.ok()) << CR.Errors;
  uint64_t RegionSlices = 0, TotalSlices = 0;
  for (const auto &[Index, R] : Telem.ordered()) {
    (void)Index;
    EXPECT_FALSE(R->Function.empty());
    ASSERT_FALSE(R->Scope.Slices.empty()) << R->Function;
    for (const telemetry::PhaseSlice &S : R->Scope.Slices) {
      ++TotalSlices;
      EXPECT_STRNE(S.Phase, "");
      EXPECT_GE(S.DurUs, 0.0);
      EXPECT_GE(S.StartUs, 0.0);
      if (std::string(S.Phase) == "rap_region") {
        EXPECT_GE(S.Region, 0);
        ++RegionSlices;
      }
      // Phase timers accumulate every slice, so each sliced phase must
      // have a timer entry.
      EXPECT_TRUE(R->Scope.TimerSeconds.count(S.Phase)) << S.Phase;
    }
  }
  EXPECT_GT(RegionSlices, 0u) << "no per-region slices recorded";
  EXPECT_EQ(CR.Telemetry.NumSlices, TotalSlices);
}

} // namespace
