//===- tests/pdg_analysis_test.cpp - Control/data dependence ------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The general PDG substrate: Ferrante/Ottenstein/Warren control dependence
/// cross-checked against the structured region tree, reaching-definitions
/// flow dependence (including Figure 1's loop-carried self-dependence of
/// i = i + 1), and the DOT export.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "cfg/Cfg.h"
#include "cfg/Dominators.h"
#include "ir/Linearize.h"
#include "pdg/ControlDependence.h"
#include "pdg/DataDependence.h"
#include "pdg/Dot.h"

#include "gtest/gtest.h"

using namespace rap;
using rap::test::compile;

namespace {

struct Analysis {
  std::unique_ptr<IlocProgram> Prog;
  IlocFunction *F = nullptr;
  LinearCode Code;

  explicit Analysis(const std::string &Src)
      : Prog(compile(Src, RegionGranularity::Merged)) {
    if (Prog) {
      F = Prog->function(0);
      Code = linearize(*F);
    }
  }
};

TEST(ControlDependence, StraightLineHasNone) {
  Analysis A("int main() { int a = 1; return a + 2; }");
  Cfg G(A.Code);
  DominatorTree Post(G, true);
  ControlDependence CD(G, Post);
  for (unsigned B = 0; B != G.numBlocks(); ++B)
    EXPECT_TRUE(CD.depsOf(B).empty());
}

TEST(ControlDependence, BranchArmsDependOnTheBranch) {
  Analysis A(R"(
    int main() {
      int a = 1;
      if (a > 0) { a = 2; } else { a = 3; }
      return a;
    }
  )");
  Cfg G(A.Code);
  DominatorTree Post(G, true);
  ControlDependence CD(G, Post);
  // Blocks: 0 entry+cond, 1 then, 2 else, 3 join.
  ASSERT_EQ(G.numBlocks(), 4u);
  ASSERT_EQ(CD.depsOf(1).size(), 1u);
  EXPECT_EQ(CD.depsOf(1)[0].Controller, 0u);
  ASSERT_EQ(CD.depsOf(2).size(), 1u);
  EXPECT_EQ(CD.depsOf(2)[0].Controller, 0u);
  EXPECT_TRUE(CD.depsOf(3).empty()) << "the join always executes";
  EXPECT_NE(CD.depsOf(1)[0].EdgeTarget, CD.depsOf(2)[0].EdgeTarget)
      << "arms hang off different branch edges";
}

TEST(ControlDependence, LoopHeadDependsOnItself) {
  Analysis A(R"(
    int main() {
      int i = 0;
      while (i < 5) { i = i + 1; }
      return i;
    }
  )");
  Cfg G(A.Code);
  DominatorTree Post(G, true);
  ControlDependence CD(G, Post);
  // Blocks: 0 entry, 1 head, 2 body, 3 exit. Head and body are control
  // dependent on the head's branch (the classic loop self-dependence).
  auto DependsOnHead = [&](unsigned B) {
    for (const ControlDep &D : CD.depsOf(B))
      if (D.Controller == 1)
        return true;
    return false;
  };
  EXPECT_TRUE(DependsOnHead(1));
  EXPECT_TRUE(DependsOnHead(2));
  EXPECT_TRUE(CD.depsOf(3).empty());
  EXPECT_TRUE(CD.depsOf(0).empty());
}

TEST(ControlDependence, AgreesWithRegionTreeNesting) {
  // Structural cross-check (DESIGN.md): an instruction nested under N
  // predicates in the region tree has exactly N control dependences.
  Analysis A(R"(
    int main() {
      int a = 1;
      if (a > 0) {
        if (a > 1) { a = 5; }
      }
      return a;
    }
  )");
  Cfg G(A.Code);
  DominatorTree Post(G, true);
  ControlDependence CD(G, Post);

  // Control dependence is not transitive: a statement depends directly on
  // its innermost governing predicate only; deeper nesting shows up as a
  // chain through the predicates' own dependences.
  A.F->root()->forEachNode([&](const PdgNode *N) {
    if (!N->isStatement() || N->Code.empty())
      return;
    const PdgNode *Governing = nullptr;
    for (const PdgNode *P = N->Parent; P; P = P->Parent)
      if (P->isPredicate()) {
        Governing = P;
        break;
      }
    unsigned Block = G.blockOf(N->Code.front()->LinPos);
    if (!Governing) {
      EXPECT_TRUE(CD.depsOf(Block).empty());
      return;
    }
    unsigned CtrlBlock = G.blockOf(Governing->Branch->LinPos);
    ASSERT_EQ(CD.depsOf(Block).size(), 1u);
    EXPECT_EQ(CD.depsOf(Block)[0].Controller, CtrlBlock)
        << "controller is the innermost governing predicate";
  });
}

TEST(DataDependence, StraightLineDefUse) {
  Analysis A("int main() { int a = 1; int b = a + 2; return b; }");
  Cfg G(A.Code);
  DataDependence DD(A.Code, G, A.F->numVRegs());
  // Every use position must see exactly the def that precedes it.
  for (const FlowDep &D : DD.flowDeps())
    EXPECT_LT(D.DefPos, D.UsePos);
  EXPECT_FALSE(DD.flowDeps().empty());
}

TEST(DataDependence, LoopCarriedSelfDependence) {
  // Figure 1's "self dependence due to the increment of scalar variable i
  // ... represented by the cyclic edge on node 7".
  Analysis A(R"(
    int main() {
      int i = 0;
      while (i < 5) { i = i + 1; }
      return i;
    }
  )");
  Cfg G(A.Code);
  DataDependence DD(A.Code, G, A.F->numVRegs());
  // The increment's definition of i reaches the use of i in the next
  // iteration: a flow dependence whose definition sits at a higher linear
  // position than its use, i.e. it travels the back edge.
  bool FoundCyclic = false;
  for (const FlowDep &D : DD.flowDeps())
    if (D.DefPos > D.UsePos)
      FoundCyclic = true;
  EXPECT_TRUE(FoundCyclic);
}

TEST(DataDependence, BothBranchDefsReachTheJoin) {
  Analysis A(R"(
    int main() {
      int a = 1;
      if (a > 0) { a = 2; } else { a = 3; }
      return a;
    }
  )");
  Cfg G(A.Code);
  DataDependence DD(A.Code, G, A.F->numVRegs());
  // The use of `a` at the return is reached by the defs in both arms (and
  // not by the initial def, which both arms kill).
  unsigned RetPos = 0;
  for (unsigned P = 0; P != A.Code.Instrs.size(); ++P)
    if (A.Code.Instrs[P]->Op == Opcode::Ret)
      RetPos = P;
  Reg AVar = A.Code.Instrs[RetPos]->Src[0];
  std::vector<unsigned> Defs = DD.reachingDefs(RetPos, AVar);
  EXPECT_EQ(Defs.size(), 2u);
}

TEST(DataDependence, KilledDefinitionDoesNotReach) {
  Analysis A(R"(
    int main() {
      int a = 1;
      a = 2;
      return a;
    }
  )");
  Cfg G(A.Code);
  DataDependence DD(A.Code, G, A.F->numVRegs());
  unsigned RetPos = static_cast<unsigned>(A.Code.Instrs.size()) - 1;
  Reg AVar = A.Code.Instrs[RetPos]->Src[0];
  std::vector<unsigned> Defs = DD.reachingDefs(RetPos, AVar);
  ASSERT_EQ(Defs.size(), 1u) << "the first definition is killed";
}

TEST(Dot, EmitsNodesAndBothEdgeKinds) {
  Analysis A(R"(
    int main() {
      int i = 1;
      while (i < 10) {
        int j = i + 1;
        if (j == 7) { j = j + 2; } else { j = j - 1; }
        i = i + j;
      }
      return i;
    }
  )");
  std::string Dot = pdgToDot(*A.F);
  EXPECT_NE(Dot.find("digraph"), std::string::npos);
  EXPECT_NE(Dot.find("style=dashed"), std::string::npos)
      << "control dependence edges";
  EXPECT_NE(Dot.find("color=blue"), std::string::npos)
      << "data dependence edges";
  EXPECT_NE(Dot.find("(loop)"), std::string::npos) << "loop region marked";
  EXPECT_NE(Dot.find("label=\"T\""), std::string::npos)
      << "labeled true edge from the predicate";
}

TEST(Dot, RegionTreeTextShowsHierarchy) {
  Analysis A(R"(
    int main() {
      int i = 0;
      while (i < 3) { i = i + 1; }
      return i;
    }
  )");
  std::string Text = regionTreeToText(*A.F);
  EXPECT_NE(Text.find("region"), std::string::npos);
  EXPECT_NE(Text.find("loop"), std::string::npos);
  EXPECT_NE(Text.find("predicate"), std::string::npos);
  EXPECT_NE(Text.find("stmt"), std::string::npos);
}

} // namespace
