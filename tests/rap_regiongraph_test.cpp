//===- tests/rap_regiongraph_test.cpp - Figures 3, 4, 5 behaviors -------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives RAP's per-region stages on programs shaped like the paper's
/// Figure 3 worked example and asserts the documented behaviors:
/// add_region_conflicts (live-in interference, unreferenced registers
/// omitted), add_subregion_conflicts (live-through registers conflict with
/// everything inside, same-register nodes merge), the global-global
/// coloring rule (Figure 3's "a and b were not colored the same color
/// because there are uses of both outside of the subregion"), combining,
/// and the Figure 5 spill-cost rules.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "interp/Interpreter.h"
#include "regalloc/Rap.h"

#include "gtest/gtest.h"

using namespace rap;
using rap::test::compile;

namespace {

// A MiniC rendering of Figure 3's code:
//   S1: a = b        S2: c = a + c
//   if (p) { S3: a = b + d }
//   else   { S4: e = 10  S5: a = e  S6: a = a + b }
//   (d defined before, used after -> live through the parent region)
const char *Fig3Source = R"(
  int use;
  int main() {
    int p = 1;
    int d = 40;
    int b = 2;
    int c = 3;
    int a = b;        /* S1 */
    c = a + c;        /* S2 */
    if (p > 0) {
      a = b + d;      /* S3 (then-region references d) */
    } else {
      int e = 10;     /* S4 */
      a = e;          /* S5 */
      a = a + b;      /* S6 */
    }
    use = a + c + b;
    return use + d;   /* keeps d live through the if */
  }
)";

struct Fig3 {
  std::unique_ptr<IlocProgram> Prog;
  IlocFunction *F = nullptr;
  std::unique_ptr<RapAllocator> RA;
  PdgNode *IfTrue = nullptr;
  PdgNode *IfFalse = nullptr;
  PdgNode *Root = nullptr;
  Reg A = NoReg, B = NoReg, C = NoReg, D = NoReg, E = NoReg;

  explicit Fig3(unsigned K) {
    // Direct copies keep the vreg identities of a..e easy to track.
    DiagnosticEngine Diags;
    Lexer L(Fig3Source, Diags);
    Parser P(L.lexAll(), Diags);
    TranslationUnit TU = P.parseTranslationUnit();
    EXPECT_TRUE(analyze(TU, Diags)) << Diags.str();
    Prog = lowerToIloc(TU, RegionGranularity::Merged, CopyStyle::Direct);
    F = Prog->function(0);
    Root = F->root();
    F->root()->forEachNode([&](const PdgNode *N) {
      if (N->isPredicate() && N->TrueRegion && N->FalseRegion) {
        IfTrue = N->TrueRegion;
        IfFalse = N->FalseRegion;
      }
    });
    // Variable vregs in declaration order: p=0, d=1, b=2, c=3, a=4; e is
    // declared inside the else arm, after S3's temporaries.
    D = 1;
    B = 2;
    C = 3;
    A = 4;
    AllocOptions AO;
    AO.K = K;
    RA = std::make_unique<RapAllocator>(*F, AO);
  }
};

TEST(RapRegionGraph, LiveInReferencedRegistersInterfere) {
  Fig3 T(8);
  // Allocate the subregions first, then build the whole-function graph.
  for (PdgNode *S : T.Root->subregions())
    T.RA->allocRegion(S);
  T.RA->refresh();
  InterferenceGraph G = T.RA->buildRegionGraph(T.Root);
  // a and c are simultaneously live (S2 reads and writes both): Figure 3(c)
  // shows the a—c edge.
  int NA = G.nodeOf(T.A), NC = G.nodeOf(T.C);
  ASSERT_GE(NA, 0);
  ASSERT_GE(NC, 0);
  EXPECT_TRUE(G.interfere(static_cast<unsigned>(NA),
                          static_cast<unsigned>(NC)));
}

TEST(RapRegionGraph, LiveThroughRegisterConflictsWithSubregionContents) {
  Fig3 T(8);
  for (PdgNode *S : T.Root->subregions())
    T.RA->allocRegion(S);
  T.RA->refresh();

  // d is not referenced in the else-arm but is live across it: Figure 4's
  // rule gives it an edge to every node allocated inside (e among them).
  InterferenceGraph G = T.RA->buildRegionGraph(T.Root);
  int ND = G.nodeOf(T.D);
  int NE = G.nodeOf(T.E == NoReg ? T.D : T.E); // E resolved below
  (void)NE;
  ASSERT_GE(ND, 0);
  // Find e: a register referenced only inside the else-arm.
  bool FoundLocalConflict = false;
  for (unsigned N : G.aliveNodes()) {
    if (static_cast<int>(N) == ND)
      continue;
    for (Reg R : G.node(N).VRegs) {
      if (!T.RA->refInfo().referencedWithin(R, T.IfFalse->LinBegin,
                                            T.IfFalse->LinEnd))
        continue;
      if (T.RA->refInfo().allRefsWithin(R, T.IfFalse->LinBegin,
                                        T.IfFalse->LinEnd)) {
        FoundLocalConflict |= G.interfere(static_cast<unsigned>(ND), N);
      }
    }
  }
  EXPECT_TRUE(FoundLocalConflict)
      << "d must conflict with the else-arm's local registers";
}

TEST(RapRegionGraph, SubregionGraphsStayWithinK) {
  Fig3 T(3);
  for (PdgNode *S : T.Root->subregions()) {
    T.RA->allocRegion(S);
    auto It = T.RA->savedGraphs().find(S);
    ASSERT_NE(It, T.RA->savedGraphs().end());
    EXPECT_LE(It->second.numAliveNodes(), 3u)
        << "combine leaves at most k nodes (paper §3.1.5)";
  }
}

TEST(RapRegionGraph, GlobalsNotCombinedInsideSubregion) {
  // Figure 3(a): "a and b were not colored the same color because there
  // are uses of both a and b outside of the subregion."
  Fig3 T(8);
  PdgNode *Else = T.IfFalse;
  ASSERT_NE(Else, nullptr);
  T.RA->allocRegion(Else);
  const InterferenceGraph &GS = T.RA->savedGraphs().at(Else);
  int NA = GS.nodeOf(T.A);
  int NB = GS.nodeOf(T.B);
  ASSERT_GE(NA, 0);
  ASSERT_GE(NB, 0);
  EXPECT_NE(NA, NB) << "two region-global registers never share a color";
}

TEST(RapRegionGraph, SameRegisterNodesMergeAcrossSubregions) {
  // a is referenced in both arms; after importing both subregion graphs the
  // parent has ONE node containing a (paper §3.1.1: "combining the
  // subregion node with one of the parent's nodes if the nodes correspond
  // to the same virtual register").
  Fig3 T(8);
  for (PdgNode *S : T.Root->subregions())
    T.RA->allocRegion(S);
  T.RA->refresh();
  InterferenceGraph G = T.RA->buildRegionGraph(T.Root);
  unsigned NodesWithA = 0;
  for (unsigned N : G.aliveNodes())
    for (Reg R : G.node(N).VRegs)
      if (R == T.A)
        ++NodesWithA;
  EXPECT_EQ(NodesWithA, 1u);
}

TEST(RapSpillCosts, LocalToSubregionIsPricedOut) {
  Fig3 T(8);
  for (PdgNode *S : T.Root->subregions())
    T.RA->allocRegion(S);
  T.RA->refresh();
  InterferenceGraph G = T.RA->buildRegionGraph(T.Root);
  T.RA->calcSpillCosts(T.Root, G);
  // Figure 3(b): the else-arm's coloring combines local e with global a
  // into one node, so arm-locals reach the parent only inside mixed nodes.
  // Figure 5 then prices out any node whose members all live inside one
  // arm; mixed nodes stay spillable through their global member.
  bool SawMixedNode = false;
  for (unsigned N : G.aliveNodes()) {
    bool HasArmLocal = false, HasGlobal = false;
    bool AllInOneArm = false;
    for (const PdgNode *Arm : {T.IfTrue, T.IfFalse}) {
      bool AllHere = !G.node(N).VRegs.empty();
      bool AnyHere = false;
      for (Reg R : G.node(N).VRegs) {
        bool Local = T.RA->refInfo().allRefsWithin(R, Arm->LinBegin,
                                                   Arm->LinEnd);
        AllHere &= Local;
        AnyHere |= Local;
      }
      AllInOneArm |= AllHere;
      HasArmLocal |= AnyHere;
    }
    for (Reg R : G.node(N).VRegs)
      HasGlobal |= !T.RA->refInfo().allRefsWithin(R, T.IfTrue->LinBegin,
                                                  T.IfTrue->LinEnd) &&
                   !T.RA->refInfo().allRefsWithin(R, T.IfFalse->LinBegin,
                                                  T.IfFalse->LinEnd);
    if (AllInOneArm) {
      EXPECT_GE(G.node(N).SpillCost, 999999.0)
          << "purely arm-local nodes are priced out (Figure 5)";
    }
    SawMixedNode |= HasArmLocal && HasGlobal;
  }
  EXPECT_TRUE(SawMixedNode)
      << "an arm-local (e) combines with a global (a), as in Figure 3(b)";
}

TEST(RapSpillCosts, ReferencedNodesHaveFiniteCost) {
  Fig3 T(8);
  for (PdgNode *S : T.Root->subregions())
    T.RA->allocRegion(S);
  T.RA->refresh();
  InterferenceGraph G = T.RA->buildRegionGraph(T.Root);
  T.RA->calcSpillCosts(T.Root, G);
  int NC = G.nodeOf(T.C);
  {
    ASSERT_GE(NC, 0);
  }
  EXPECT_LT(G.node(NC).SpillCost, 999999.0)
      << "c is spillable: (uses + defs) / degree";
  EXPECT_GT(G.node(NC).SpillCost, 0.0);
}

TEST(RapRegionGraph, GlobalFlagTracksOutsideReferences) {
  Fig3 T(8);
  PdgNode *Else = T.IfFalse;
  T.RA->allocRegion(Else);
  EXPECT_TRUE(T.RA->isGlobalTo(T.A, Else));
  EXPECT_TRUE(T.RA->isGlobalTo(T.B, Else));
  EXPECT_FALSE(T.RA->isGlobalTo(T.A, T.Root))
      << "nothing is global to the whole function";
}

TEST(RapEndToEnd, Figure3ProgramAllocatesAtAllK) {
  for (unsigned K : {3u, 5u, 8u}) {
    DiagnosticEngine Diags;
    Lexer L(Fig3Source, Diags);
    Parser P(L.lexAll(), Diags);
    TranslationUnit TU = P.parseTranslationUnit();
    ASSERT_TRUE(analyze(TU, Diags));
    auto Ref = lowerToIloc(TU, RegionGranularity::Merged, CopyStyle::Direct);
    Interpreter RefI(*Ref);
    RunResult RefRun = RefI.run();
    ASSERT_TRUE(RefRun.Ok);

    auto Prog = lowerToIloc(TU, RegionGranularity::Merged, CopyStyle::Direct);
    AllocOptions AO;
    AO.K = K;
    allocateRap(*Prog->function(0), AO);
    Interpreter I(*Prog);
    RunResult R = I.run();
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.ReturnValue.asInt(), RefRun.ReturnValue.asInt()) << "k=" << K;
  }
}

} // namespace
