//===- tests/cache_store_test.cpp - Durable cache crash recovery ------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The durable allocation cache's recovery contract (DESIGN.md §15), tested
/// bottom-up:
///
///  * journal framing is prefix-recoverable as a *property*: truncating the
///    stream at every byte offset, and flipping every byte of the final
///    frame, always yields exactly the clean prefix — never an abort, never
///    a frame past the damage;
///  * the entry codec round-trips a real compiled function bit-exactly and
///    rejects every truncation of its payload;
///  * CacheStore replays appended entries across a reopen byte-identically,
///    truncates torn journal tails (again at every byte offset), wipes the
///    store on a fingerprint mismatch without ever serving a stale entry,
///    compacts snapshot+journal with last-wins merge semantics, and
///    degrades to in-memory-only — instead of crashing — when the
///    journal-write or snapshot-compact chaos sites fire;
///  * CompileService, pointed at a cache directory across two instances
///    (a simulated restart), warm-hits with output byte-identical to the
///    first instance's cold compile.
///
//===----------------------------------------------------------------------===//

#include "server/CacheStore.h"

#include "driver/Pipeline.h"
#include "server/CompileService.h"
#include "support/Journal.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

using namespace rap;
using namespace rap::server;

namespace {

namespace fs = std::filesystem;

//===----------------------------------------------------------------------===//
// Fixtures
//===----------------------------------------------------------------------===//

/// A fresh store directory per test, removed on teardown.
class CacheStoreTest : public ::testing::Test {
protected:
  void SetUp() override {
    const ::testing::TestInfo *TI =
        ::testing::UnitTest::GetInstance()->current_test_info();
    Dir = (fs::temp_directory_path() /
           (std::string("rap_cache_store_") + TI->name()))
              .string();
    fs::remove_all(Dir);
  }
  void TearDown() override { fs::remove_all(Dir); }

  CacheStoreConfig config(uint64_t Fingerprint = 7) const {
    CacheStoreConfig C;
    C.Dir = Dir;
    C.Fingerprint = Fingerprint;
    C.CompactBytes = 0; // compaction only when a test asks for it
    return C;
  }

  std::string Dir;
};

/// Small module whose functions give the codec real bodies to serialize:
/// enough pressure that allocation inserts spill code (so AllocStats has
/// nonzero fields to round-trip) but small enough that torn-tail sweeps
/// over whole entry frames stay fast.
std::string moduleSource() {
  return "int work(int n) {\n"
         "  int a = n + 3;\n"
         "  int b = a * 5 + 1;\n"
         "  int c = a - b + 7;\n"
         "  int d = a * b % 97;\n"
         "  for (int i = 0; i < n; i = i + 1) {\n"
         "    a = a + b * i % 61;\n"
         "    b = b + c - i;\n"
         "    c = c + d % 43;\n"
         "    d = d + a - b;\n"
         "  }\n"
         "  return a + b + c + d;\n"
         "}\n"
         "int twice(int n) { return work(n) + work(n + 1); }\n"
         "int main() { return twice(9); }\n";
}

/// Compiles the module with the RAP allocator; the result owns the
/// IlocFunctions and AllocOutcomes the codec tests serialize.
CompileResult compiledModule() {
  CompileOptions Options;
  Options.Allocator = AllocatorKind::Rap;
  Options.Alloc.K = 3;
  CompileResult R = compileMiniC(moduleSource(), Options);
  EXPECT_TRUE(R.ok()) << R.Errors;
  EXPECT_EQ(R.Prog->functions().size(), R.AllocOutcomes.size());
  return R;
}

std::string readFileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << Path;
  std::string Data((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  return Data;
}

void writeFileBytes(const std::string &Path, const std::string &Data) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Data.data(), static_cast<std::streamsize>(Data.size()));
  ASSERT_TRUE(Out.good()) << Path;
}

/// One replayed entry, rendered for byte-identity comparison.
struct Replayed {
  uint64_t Key;
  std::string Text; ///< Body->str()
  std::string Function;
};

/// Opens a store over \p Config and collects everything it replays.
std::vector<Replayed> replayAll(const CacheStoreConfig &Config,
                                CacheStoreCounters *CountersOut = nullptr,
                                bool *OpenedOut = nullptr) {
  std::vector<Replayed> Entries;
  CacheStore Store(Config);
  bool Opened = Store.open([&](uint64_t Key, std::unique_ptr<IlocFunction> B,
                               const AllocOutcome &O) {
    Entries.push_back({Key, B->str(), O.Function});
  });
  if (OpenedOut)
    *OpenedOut = Opened;
  if (CountersOut)
    *CountersOut = Store.counters();
  return Entries;
}

//===----------------------------------------------------------------------===//
// Journal framing: prefix recovery as a property
//===----------------------------------------------------------------------===//

std::vector<std::string> samplePayloads() {
  return {"alpha", std::string(1, '\0') + "binary\xff\x7f",
          std::string(300, 'x'), ""};
}

std::string framedStream(const std::vector<std::string> &Payloads) {
  std::string Buf;
  for (size_t I = 0; I != Payloads.size(); ++I)
    journal::appendFrame(Buf, static_cast<uint8_t>(I + 1), Payloads[I]);
  return Buf;
}

TEST(JournalFrames, RoundTrip) {
  std::vector<std::string> Payloads = samplePayloads();
  std::string Buf = framedStream(Payloads);

  std::vector<std::pair<uint8_t, std::string>> Seen;
  journal::ScanResult R =
      journal::scanFrames(Buf.data(), Buf.size(), [&](journal::Frame F) {
        Seen.emplace_back(F.Type, std::string(F.Payload, F.PayloadSize));
        return true;
      });

  EXPECT_EQ(R.FramesOk, Payloads.size());
  EXPECT_EQ(R.BytesConsumed, Buf.size());
  EXPECT_FALSE(R.TornTail);
  ASSERT_EQ(Seen.size(), Payloads.size());
  for (size_t I = 0; I != Payloads.size(); ++I) {
    EXPECT_EQ(Seen[I].first, I + 1);
    EXPECT_EQ(Seen[I].second, Payloads[I]);
  }
}

/// Truncating the stream at EVERY byte offset recovers exactly the frames
/// that fit completely before the cut — the torn-tail property the crash
/// story rests on (a SIGKILL mid-::write leaves precisely such a stream).
TEST(JournalFrames, TruncationAtEveryOffsetRecoversPrefix) {
  std::vector<std::string> Payloads = samplePayloads();
  std::string Buf = framedStream(Payloads);

  // Frame boundaries: ends[i] = offset one past frame i.
  std::vector<size_t> Ends;
  size_t Off = 0;
  for (const std::string &P : Payloads) {
    Off += 8 + 1 + P.size();
    Ends.push_back(Off);
  }
  ASSERT_EQ(Off, Buf.size());

  for (size_t Cut = 0; Cut != Buf.size(); ++Cut) {
    size_t WantFrames = 0;
    while (WantFrames != Ends.size() && Ends[WantFrames] <= Cut)
      ++WantFrames;

    journal::ScanResult R = journal::scanFrames(
        Buf.data(), Cut, [](journal::Frame) { return true; });
    EXPECT_EQ(R.FramesOk, WantFrames) << "cut at " << Cut;
    EXPECT_EQ(R.BytesConsumed, WantFrames ? Ends[WantFrames - 1] : 0)
        << "cut at " << Cut;
    EXPECT_EQ(R.TornTail, Cut != R.BytesConsumed) << "cut at " << Cut;
  }
}

/// Flipping EVERY byte of the final frame — header, CRC, type, payload —
/// must yield exactly the prefix before it: a valid length+CRC cannot
/// survive any single-byte corruption, so the damaged frame is dropped and
/// nothing past it is ever trusted.
TEST(JournalFrames, BitFlipInLastFrameRecoversPrefix) {
  std::vector<std::string> Payloads = samplePayloads();
  std::string Buf = framedStream(Payloads);
  size_t LastStart = Buf.size() - (8 + 1 + Payloads.back().size());
  size_t PrefixFrames = Payloads.size() - 1;

  for (size_t At = LastStart; At != Buf.size(); ++At) {
    std::string Bad = Buf;
    Bad[At] = static_cast<char>(Bad[At] ^ 0xFF);

    std::vector<std::string> Seen;
    journal::ScanResult R = journal::scanFrames(
        Bad.data(), Bad.size(), [&](journal::Frame F) {
          Seen.emplace_back(F.Payload, F.PayloadSize);
          return true;
        });
    EXPECT_EQ(R.FramesOk, PrefixFrames) << "flip at " << At;
    EXPECT_EQ(R.BytesConsumed, LastStart) << "flip at " << At;
    EXPECT_TRUE(R.TornTail) << "flip at " << At;
    ASSERT_EQ(Seen.size(), PrefixFrames);
    for (size_t I = 0; I != PrefixFrames; ++I)
      EXPECT_EQ(Seen[I], Payloads[I]) << "flip at " << At;
  }
}

//===----------------------------------------------------------------------===//
// Entry codec
//===----------------------------------------------------------------------===//

TEST(CacheEntryCodec, RoundTripsCompiledFunctions) {
  CompileResult R = compiledModule();
  for (size_t I = 0; I != R.Prog->functions().size(); ++I) {
    const IlocFunction &F = *R.Prog->functions()[I];
    const AllocOutcome &O = R.AllocOutcomes[I];
    uint64_t Key = 0x1000 + I;

    std::string Enc = encodeCacheEntry(Key, F, O);
    DecodedCacheEntry D;
    ASSERT_TRUE(decodeCacheEntry(Enc.data(), Enc.size(), D)) << F.name();

    EXPECT_EQ(D.Key, Key);
    ASSERT_TRUE(D.Body);
    EXPECT_EQ(D.Body->str(), F.str()); // byte-identical replay
    EXPECT_EQ(D.Outcome.Function, O.Function);
    EXPECT_EQ(D.Outcome.Status, O.Status);
    EXPECT_EQ(D.Outcome.Error, O.Error);
    EXPECT_TRUE(D.Outcome.Stats.structuralEq(O.Stats));
  }
}

/// The decoder consumes every field and checks the body witness, so a
/// truncation at ANY payload offset must be rejected — a torn frame can
/// never half-apply.
TEST(CacheEntryCodec, RejectsEveryTruncation) {
  CompileResult R = compiledModule();
  const IlocFunction &F = *R.Prog->functions().front();
  std::string Enc = encodeCacheEntry(42, F, R.AllocOutcomes.front());

  for (size_t Cut = 0; Cut != Enc.size(); ++Cut) {
    DecodedCacheEntry D;
    EXPECT_FALSE(decodeCacheEntry(Enc.data(), Cut, D)) << "cut at " << Cut;
  }
}

//===----------------------------------------------------------------------===//
// CacheStore: reopen, torn tails, invalidation, compaction, chaos
//===----------------------------------------------------------------------===//

TEST_F(CacheStoreTest, ReplaysAppendsAcrossReopen) {
  CompileResult R = compiledModule();
  std::vector<std::string> ColdTexts;

  {
    CacheStore Store(config());
    ASSERT_TRUE(Store.open(nullptr));
    EXPECT_EQ(Store.counters().FramesReplayed, 0u);
    for (size_t I = 0; I != R.Prog->functions().size(); ++I) {
      Store.append(100 + I, *R.Prog->functions()[I], R.AllocOutcomes[I]);
      ColdTexts.push_back(R.Prog->functions()[I]->str());
    }
    Store.flush();
    EXPECT_FALSE(Store.degraded());
    EXPECT_EQ(Store.counters().Appends, R.Prog->functions().size());
  }

  CacheStoreCounters C;
  bool Opened = false;
  std::vector<Replayed> Entries = replayAll(config(), &C, &Opened);
  ASSERT_TRUE(Opened);
  ASSERT_EQ(Entries.size(), ColdTexts.size());
  EXPECT_EQ(C.FramesReplayed, ColdTexts.size());
  EXPECT_EQ(C.TornTailBytes, 0u);
  EXPECT_EQ(C.BadEntriesDropped, 0u);
  EXPECT_EQ(C.Invalidations, 0u);
  EXPECT_FALSE(C.SnapshotLoaded); // never compacted
  for (size_t I = 0; I != Entries.size(); ++I) {
    EXPECT_EQ(Entries[I].Key, 100 + I);
    EXPECT_EQ(Entries[I].Text, ColdTexts[I]); // bit-identical across reopen
  }
}

/// Truncates the on-disk journal at EVERY byte offset of its final entry
/// frame and reopens: recovery must deliver exactly the preceding entries,
/// count the dropped tail, and leave the store appendable — the end-to-end
/// version of the framing property, through real files.
TEST_F(CacheStoreTest, TornJournalTailTruncatedAtEveryOffset) {
  CompileResult R = compiledModule();
  ASSERT_GE(R.Prog->functions().size(), 3u);

  std::string JournalFile;
  {
    CacheStore Store(config());
    ASSERT_TRUE(Store.open(nullptr));
    for (size_t I = 0; I != 3; ++I)
      Store.append(I, *R.Prog->functions()[I], R.AllocOutcomes[I]);
    Store.flush();
    JournalFile = Store.journalPath();
  }
  std::string Pristine = readFileBytes(JournalFile);

  // Locate the last entry frame by scanning the pristine journal.
  std::vector<size_t> FrameEnds;
  size_t Off = 0;
  journal::scanFrames(Pristine.data(), Pristine.size(),
                      [&](journal::Frame F) {
                        Off += 8 + 1 + F.PayloadSize;
                        FrameEnds.push_back(Off);
                        return true;
                      });
  ASSERT_EQ(FrameEnds.size(), 4u); // header + 3 entries
  ASSERT_EQ(FrameEnds.back(), Pristine.size());
  size_t LastStart = FrameEnds[FrameEnds.size() - 2];

  for (size_t Cut = LastStart; Cut != Pristine.size(); ++Cut) {
    writeFileBytes(JournalFile, Pristine.substr(0, Cut));

    CacheStoreCounters C;
    std::vector<Replayed> Entries = replayAll(config(), &C);
    ASSERT_EQ(Entries.size(), 2u) << "cut at " << Cut;
    EXPECT_EQ(Entries[0].Key, 0u);
    EXPECT_EQ(Entries[1].Key, 1u);
    EXPECT_EQ(C.FramesReplayed, 2u) << "cut at " << Cut;
    EXPECT_EQ(C.TornTailBytes, Cut - LastStart) << "cut at " << Cut;
  }

  // The reopen truncated the torn tail; appending after recovery and
  // reopening once more yields the two survivors plus the new entry.
  {
    CacheStore Store(config());
    ASSERT_TRUE(Store.open(nullptr));
    Store.append(9, *R.Prog->functions()[2], R.AllocOutcomes[2]);
    Store.flush();
  }
  std::vector<Replayed> Entries = replayAll(config());
  ASSERT_EQ(Entries.size(), 3u);
  EXPECT_EQ(Entries[2].Key, 9u);
}

/// Flips EVERY byte of the journal's final entry frame: recovery must stop
/// at the clean prefix (CRC veto) and never crash, decode garbage, or
/// deliver a frame past the corruption.
TEST_F(CacheStoreTest, TornJournalTailBitFlippedAtEveryOffset) {
  CompileResult R = compiledModule();

  std::string JournalFile;
  {
    CacheStore Store(config());
    ASSERT_TRUE(Store.open(nullptr));
    for (size_t I = 0; I != 2; ++I)
      Store.append(I, *R.Prog->functions()[I], R.AllocOutcomes[I]);
    Store.flush();
    JournalFile = Store.journalPath();
  }
  std::string Pristine = readFileBytes(JournalFile);

  size_t Off = 0;
  std::vector<size_t> FrameEnds;
  journal::scanFrames(Pristine.data(), Pristine.size(),
                      [&](journal::Frame F) {
                        Off += 8 + 1 + F.PayloadSize;
                        FrameEnds.push_back(Off);
                        return true;
                      });
  ASSERT_EQ(FrameEnds.size(), 3u); // header + 2 entries
  size_t LastStart = FrameEnds[FrameEnds.size() - 2];

  for (size_t At = LastStart; At != Pristine.size(); ++At) {
    std::string Bad = Pristine;
    Bad[At] = static_cast<char>(Bad[At] ^ 0xFF);
    writeFileBytes(JournalFile, Bad);

    CacheStoreCounters C;
    std::vector<Replayed> Entries = replayAll(config(), &C);
    ASSERT_EQ(Entries.size(), 1u) << "flip at " << At;
    EXPECT_EQ(Entries[0].Key, 0u) << "flip at " << At;
    EXPECT_EQ(C.FramesReplayed, 1u) << "flip at " << At;
    EXPECT_GT(C.TornTailBytes, 0u) << "flip at " << At;
  }
}

/// A fingerprint mismatch — rebuilt binary, changed entry schema — wipes
/// both files and replays nothing: the store would rather recompile the
/// world than serve one stale entry.
TEST_F(CacheStoreTest, FingerprintMismatchWipesCleanNeverStale) {
  CompileResult R = compiledModule();
  {
    CacheStore Store(config(/*Fingerprint=*/7));
    ASSERT_TRUE(Store.open(nullptr));
    Store.append(1, *R.Prog->functions()[0], R.AllocOutcomes[0]);
    Store.flush();
  }

  // Reopen under a different fingerprint: nothing replayed, one
  // invalidation, and the store is immediately usable for the new build.
  CacheStoreCounters C;
  bool Opened = false;
  {
    CacheStore Store(config(/*Fingerprint=*/8));
    std::vector<Replayed> Entries;
    Opened = Store.open([&](uint64_t Key, std::unique_ptr<IlocFunction> B,
                            const AllocOutcome &O) {
      Entries.push_back({Key, B->str(), O.Function});
    });
    EXPECT_TRUE(Entries.empty()); // never a stale hit
    C = Store.counters();
    Store.append(2, *R.Prog->functions()[1], R.AllocOutcomes[1]);
    Store.flush();
  }
  ASSERT_TRUE(Opened);
  EXPECT_EQ(C.FramesReplayed, 0u);
  EXPECT_EQ(C.Invalidations, 1u);

  // The re-fingerprinted store replays its own entries on the next open.
  std::vector<Replayed> Entries = replayAll(config(/*Fingerprint=*/8), &C);
  ASSERT_EQ(Entries.size(), 1u);
  EXPECT_EQ(Entries[0].Key, 2u);
  EXPECT_EQ(C.Invalidations, 0u);
}

/// Compaction merges snapshot+journal last-wins per key into a fresh
/// snapshot and truncates the journal; a reopen loads the snapshot and
/// sees one entry per key with the newest body.
TEST_F(CacheStoreTest, CompactionMergesLastWins) {
  CompileResult R = compiledModule();
  const IlocFunction &FirstBody = *R.Prog->functions()[0];
  const IlocFunction &SecondBody = *R.Prog->functions()[1];

  {
    CacheStore Store(config());
    ASSERT_TRUE(Store.open(nullptr));
    // Key 1 written twice with different bodies: the later insert must win.
    Store.append(1, FirstBody, R.AllocOutcomes[0]);
    Store.append(1, SecondBody, R.AllocOutcomes[1]);
    Store.append(2, FirstBody, R.AllocOutcomes[0]);
    Store.compactNow();
    EXPECT_FALSE(Store.degraded());
    EXPECT_EQ(Store.counters().Compactions, 1u);
    EXPECT_TRUE(fs::exists(Store.snapshotPath()));
    // The journal holds only its header again; new appends go after it.
    Store.append(3, SecondBody, R.AllocOutcomes[1]);
    Store.flush();
  }

  CacheStoreCounters C;
  std::vector<Replayed> Entries = replayAll(config(), &C);
  EXPECT_TRUE(C.SnapshotLoaded);
  ASSERT_EQ(Entries.size(), 3u); // keys 1, 2 from snapshot; 3 from journal
  std::map<uint64_t, std::string> ByKey;
  for (const Replayed &E : Entries)
    ByKey[E.Key] = E.Text;
  ASSERT_EQ(ByKey.size(), 3u);
  EXPECT_EQ(ByKey[1], SecondBody.str()); // last-wins merge
  EXPECT_EQ(ByKey[2], FirstBody.str());
  EXPECT_EQ(ByKey[3], SecondBody.str());
}

/// The journal-write chaos site degrades the store to in-memory-only:
/// appends become no-ops, nothing crashes, and what reached disk before the
/// fault still replays on the next open.
TEST_F(CacheStoreTest, JournalWriteFaultDegradesToMemoryOnly) {
  CompileResult R = compiledModule();

  {
    CacheStoreConfig C = config();
    int Countdown = 1; // first append succeeds, second hits the fault
    C.Chaos = [&Countdown](FaultSite S) {
      return S == FaultSite::JournalWrite && Countdown-- <= 0;
    };
    CacheStore Store(C);
    ASSERT_TRUE(Store.open(nullptr));
    Store.append(1, *R.Prog->functions()[0], R.AllocOutcomes[0]);
    EXPECT_FALSE(Store.degraded());
    Store.append(2, *R.Prog->functions()[1], R.AllocOutcomes[1]);
    EXPECT_TRUE(Store.degraded());
    EXPECT_TRUE(Store.counters().Degraded);
    // Degraded appends/flushes/compactions are contained no-ops.
    Store.append(3, *R.Prog->functions()[2], R.AllocOutcomes[2]);
    Store.flush();
    Store.compactNow();
    EXPECT_EQ(Store.counters().Appends, 1u);
  }

  std::vector<Replayed> Entries = replayAll(config());
  ASSERT_EQ(Entries.size(), 1u); // the pre-fault prefix survived
  EXPECT_EQ(Entries[0].Key, 1u);
}

/// The snapshot-compact chaos site likewise degrades instead of crashing,
/// and the pre-compaction journal remains the recoverable truth.
TEST_F(CacheStoreTest, SnapshotCompactFaultDegradesToMemoryOnly) {
  CompileResult R = compiledModule();

  {
    CacheStoreConfig C = config();
    C.Chaos = [](FaultSite S) { return S == FaultSite::SnapshotCompact; };
    CacheStore Store(C);
    ASSERT_TRUE(Store.open(nullptr));
    Store.append(1, *R.Prog->functions()[0], R.AllocOutcomes[0]);
    Store.append(2, *R.Prog->functions()[1], R.AllocOutcomes[1]);
    Store.compactNow();
    EXPECT_TRUE(Store.degraded());
    EXPECT_EQ(Store.counters().Compactions, 0u);
  }

  CacheStoreCounters C;
  std::vector<Replayed> Entries = replayAll(config(), &C);
  EXPECT_FALSE(C.SnapshotLoaded);
  ASSERT_EQ(Entries.size(), 2u);
  EXPECT_EQ(Entries[0].Key, 1u);
  EXPECT_EQ(Entries[1].Key, 2u);
}

//===----------------------------------------------------------------------===//
// CompileService across a simulated restart
//===----------------------------------------------------------------------===//

/// Two CompileService instances sharing a cache directory model a crash and
/// restart: the second must warm-hit everything the first compiled, with
/// output byte-identical to the cold run — the kill -9 soak's core gate,
/// as a deterministic unit test.
TEST_F(CacheStoreTest, ServiceWarmHitsAcrossSimulatedRestart) {
  RequestOptions Opts;
  Opts.Allocator = AllocatorKind::Rap;
  Opts.K = 3;
  std::string Src = moduleSource();

  uint64_t ColdHash = 0;
  unsigned ColdMisses = 0;
  {
    ServiceConfig Config;
    Config.Shards = 2;
    Config.CacheDir = Dir;
    CompileService Service(Config);
    ServiceResult Cold = Service.compile(Src, Opts);
    ASSERT_TRUE(Cold.Ok) << Cold.Errors;
    EXPECT_EQ(Cold.CacheHits, 0u);
    ASSERT_GT(Cold.CacheMisses, 0u);
    ColdHash = Cold.OutputHash;
    ColdMisses = Cold.CacheMisses;
    if (CacheStore *Store = Service.store())
      Store->flush();
  }

  ServiceConfig Config;
  Config.Shards = 2;
  Config.CacheDir = Dir;
  CompileService Service(Config);
  ServiceCounters C = Service.counters();
  EXPECT_TRUE(C.PersistEnabled);
  EXPECT_EQ(C.JournalFramesReplayed, ColdMisses);

  ServiceResult Warm = Service.compile(Src, Opts);
  ASSERT_TRUE(Warm.Ok) << Warm.Errors;
  EXPECT_EQ(Warm.CacheMisses, 0u);
  EXPECT_EQ(Warm.CacheHits, ColdMisses);
  EXPECT_EQ(Warm.OutputHash, ColdHash); // warm == cold, across processes
}

} // namespace
