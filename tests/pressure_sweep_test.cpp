//===- tests/pressure_sweep_test.cpp - Register-pressure sweep --------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sweeps the register supply k over a generated pressure workload and pins
/// the contract at both ends: k=2 is rejected with a structured
/// Unallocatable diagnostic (a load/store ISA needs at least 3 registers —
/// never a crash, never a silent fallback), while every k in 3..32
/// allocates cleanly (zero spill-everything fallbacks) and the executed
/// spill traffic (dynamic ldm+stm) never increases as registers are added —
/// more registers can only remove spills. Raw cycle counts are checked at
/// the knee (k=3 vs k=32) rather than pairwise: changing k perturbs color
/// choices and with them copy cleanup, which can wiggle cycles by a handful
/// even as spill traffic falls.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "fuzz/ScaleProgram.h"
#include "regalloc/Allocator.h"

#include "gtest/gtest.h"

#include <string>
#include <vector>

using namespace rap;

namespace {

/// The sweep workload: a module whose pressure band (8 scalars live across
/// every function body) forces heavy spilling at k=3 and none by k=32.
std::string sweepSource() {
  fuzz::ScaleProgramConfig C;
  C.Seed = 19;
  C.NumFunctions = 8;
  C.StmtsPerFunction = 6;
  C.PressureVars = 8;
  return fuzz::ScaleProgramBuilder(C).buildModule();
}

const char *allocName(AllocatorKind Kind) {
  return Kind == AllocatorKind::Rap ? "rap" : "gra";
}

//===----------------------------------------------------------------------===//
// k=2: structured rejection
//===----------------------------------------------------------------------===//

TEST(PressureSweep, KTwoIsRejectedStructurally) {
  std::string Src = sweepSource();
  for (AllocatorKind Kind : {AllocatorKind::Rap, AllocatorKind::Gra}) {
    // Strict mode: the compile fails with the unallocatable diagnostic.
    CompileOptions Strict;
    Strict.Allocator = Kind;
    Strict.Alloc.K = 2;
    Strict.Alloc.FallbackOnError = false;
    CompileResult CR = compileMiniC(Src, Strict);
    EXPECT_FALSE(CR.ok()) << allocName(Kind);
    EXPECT_NE(CR.Errors.find("unallocatable"), std::string::npos)
        << allocName(Kind) << ": " << CR.Errors;

    // Checked mode: the outcome ledger carries the structured kind per
    // function (k=2 cannot even run the fallback, which also needs 3).
    CompileOptions Front; // Allocator = None
    CompileResult UC = compileMiniC(Src, Front);
    ASSERT_TRUE(UC.ok()) << UC.Errors;
    AllocOptions AO;
    AO.K = 2;
    AO.FallbackOnError = false;
    EXPECT_THROW(allocateProgramChecked(*UC.Prog, Kind, AO), AllocError);
  }
}

//===----------------------------------------------------------------------===//
// k in 3..32: clean allocation, monotone dynamic cost
//===----------------------------------------------------------------------===//

TEST(PressureSweep, NoFallbacksAndMonotoneSpillTrafficAcrossK) {
  std::string Src = sweepSource();

  CompileOptions RefOpts; // unallocated reference checksum
  RunResult Ref = compileAndRun(Src, RefOpts);
  ASSERT_TRUE(Ref.Ok) << Ref.Error;
  int64_t Want = Ref.ReturnValue.asInt();

  for (AllocatorKind Kind : {AllocatorKind::Rap, AllocatorKind::Gra}) {
    uint64_t PrevSpill = 0;
    uint64_t FirstCycles = 0, LastCycles = 0, LastSpill = 0;
    bool HavePrev = false;
    for (unsigned K = 3; K <= 32; ++K) {
      CompileOptions Front;
      CompileResult CR = compileMiniC(Src, Front);
      ASSERT_TRUE(CR.ok()) << CR.Errors;

      AllocOptions AO;
      AO.K = K;
      AO.VerifyAssignments = true;
      AO.FallbackOnError = true; // a fallback would be recorded, not thrown
      ProgramAllocResult PR = allocateProgramChecked(*CR.Prog, Kind, AO);
      EXPECT_EQ(PR.numFallbacks(), 0u)
          << allocName(Kind) << " k=" << K << ":\n"
          << PR.summary();

      RunResult R = Interpreter(*CR.Prog).run();
      ASSERT_TRUE(R.Ok) << allocName(Kind) << " k=" << K << ": " << R.Error;
      EXPECT_EQ(R.ReturnValue.asInt(), Want)
          << allocName(Kind) << " k=" << K;

      uint64_t Spill = R.Stats.SpillLoads + R.Stats.SpillStores;
      if (HavePrev)
        EXPECT_LE(Spill, PrevSpill)
            << allocName(Kind) << ": spill traffic increased going to k="
            << K;
      else
        FirstCycles = R.Stats.Cycles;
      PrevSpill = Spill;
      LastSpill = Spill;
      LastCycles = R.Stats.Cycles;
      HavePrev = true;
    }
    // The sweep must actually exercise the pressure knee: heavy spilling at
    // k=3 has to cost real cycles relative to the top end, and by k=32 all
    // eight pressure scalars fit — no spill traffic at all.
    EXPECT_GT(FirstCycles, LastCycles) << allocName(Kind);
    EXPECT_EQ(LastSpill, 0u) << allocName(Kind);
  }
}

} // namespace
