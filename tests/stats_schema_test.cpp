//===- tests/stats_schema_test.cpp - Machine-readable output schemas --------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates every machine-readable document the toolchain emits by parsing
/// the serialized text back through the strict json parser:
///
///  * "rap-stats-v1" (rapcc --stats=json / driver statsJson): required
///    keys, correct types, no nulls anywhere (a null is how a NaN/Inf
///    sneaks into serialization), counters non-negative, ledger internally
///    consistent, per-function rows folding to the aggregate.
///  * Chrome trace-event JSON (--trace): only "X" complete events and "M"
///    metadata, with the fields about://tracing requires.
///  * "rap-bench-v1" (the bench harnesses' --json envelope) and the shared
///    bench flag parser (--csv / --json / --k validation).
///
//===----------------------------------------------------------------------===//

#include "../bench/Table1Support.h"
#include "driver/Pipeline.h"
#include "driver/Report.h"
#include "support/Json.h"
#include "support/Stats.h"

#include "gtest/gtest.h"

#include <sstream>
#include <string>
#include <vector>

using namespace rap;

namespace {

const char *PressureSource = R"(
int work(int n) {
  int a = 1; int b = 2; int c = 3; int d = 4;
  int e = 5; int f = 6; int g = 7; int h = 8;
  int i;
  for (i = 0; i < n; i = i + 1) {
    a = a + b; b = b + c; c = c + d; d = d + e;
    e = e + f; f = f + g; g = g + h; h = h + a;
  }
  return a + b + c + d + e + f + g + h;
}

int main() {
  return work(12);
}
)";

/// Keys allocStatsJson must emit — one per AllocStats ledger counter.
const char *AllocKeys[] = {
    "graph_builds",           "spilled_vregs",
    "max_graph_nodes",        "regions_processed",
    "spill_rounds",           "spill_loads_inserted",
    "spill_stores_inserted",  "hoisted_loads",
    "sunk_stores",            "movement_removed_loads",
    "movement_removed_stores","peephole_removed_loads",
    "peephole_removed_stores","peephole_loads_to_copies",
    "cleanup_removed_loads",  "cleanup_removed_stores",
    "copies_deleted",         "peak_graph_bytes",
};

/// No null may appear anywhere in an emitted document: the writer turns
/// non-finite doubles into null precisely so this walk catches them.
void expectNoNulls(const json::Value &V, const std::string &Path) {
  EXPECT_FALSE(V.isNull()) << "null (NaN/Inf?) at " << Path;
  if (V.isArray())
    for (size_t I = 0; I != V.asArray().size(); ++I)
      expectNoNulls(V.asArray()[I], Path + "[" + std::to_string(I) + "]");
  if (V.isObject())
    for (const auto &[K, M] : V.asObject())
      expectNoNulls(M, Path + "." + K);
}

void expectAllocObject(const json::Value &A, const std::string &Path) {
  ASSERT_TRUE(A.isObject()) << Path;
  for (const char *Key : AllocKeys) {
    ASSERT_TRUE(A.has(Key)) << Path << " missing " << Key;
    ASSERT_TRUE(A[Key].isInt()) << Path << "." << Key;
    EXPECT_GE(A[Key].asInt(), 0) << Path << "." << Key;
  }
  // Internal ledger consistency: cleanups cannot remove more spill code
  // than spilling and movement created.
  EXPECT_GE(A["spill_loads_inserted"].asInt() + A["hoisted_loads"].asInt(),
            A["movement_removed_loads"].asInt() +
                A["peephole_removed_loads"].asInt() +
                A["peephole_loads_to_copies"].asInt() +
                A["cleanup_removed_loads"].asInt())
      << Path << ": load ledger went negative";
  EXPECT_GE(A["spill_stores_inserted"].asInt() + A["sunk_stores"].asInt(),
            A["movement_removed_stores"].asInt() +
                A["peephole_removed_stores"].asInt() +
                A["cleanup_removed_stores"].asInt())
      << Path << ": store ledger went negative";
}

json::Value parsedStatsDoc(CompileResult &CR, telemetry::Telemetry &Telem) {
  CompileOptions Options;
  Options.Allocator = AllocatorKind::Rap;
  Options.Alloc.K = 3;
  Options.Alloc.Telem = &Telem;
  CR = compileMiniC(PressureSource, Options);
  EXPECT_TRUE(CR.ok()) << CR.Errors;
  ReportMeta Meta;
  Meta.Allocator = "rap";
  Meta.K = 3;
  Meta.Threads = 1;
  std::string Text = statsJson(CR, Meta).str(2);
  json::Value Doc;
  std::string Error;
  EXPECT_TRUE(json::parse(Text, Doc, &Error)) << Error;
  return Doc;
}

//===----------------------------------------------------------------------===//
// rap-stats-v1
//===----------------------------------------------------------------------===//

TEST(StatsSchema, RequiredKeysAndTypes) {
  CompileResult CR;
  telemetry::Telemetry Telem;
  json::Value Doc = parsedStatsDoc(CR, Telem);
  ASSERT_TRUE(Doc.isObject());

  EXPECT_EQ(Doc["schema"].asString(), "rap-stats-v1");
  EXPECT_EQ(Doc["allocator"].asString(), "rap");
  EXPECT_EQ(Doc["k"].asInt(), 3);
  EXPECT_EQ(Doc["threads"].asInt(), 1);
  ASSERT_TRUE(Doc["functions"].isInt());
  ASSERT_TRUE(Doc["degraded_functions"].isInt());
  EXPECT_EQ(Doc["degraded_functions"].asInt(), 0);
  ASSERT_TRUE(Doc["per_function"].isArray());
  ASSERT_TRUE(Doc["counters"].isObject());
  ASSERT_TRUE(Doc["timers"].isObject());
  ASSERT_TRUE(Doc["timing"].isObject());
  ASSERT_TRUE(Doc["telemetry_slices"].isInt());
  expectNoNulls(Doc, "$");

  expectAllocObject(Doc["alloc"], "$.alloc");
  EXPECT_EQ(Doc["functions"].asInt(),
            int64_t(Doc["per_function"].asArray().size()));
  EXPECT_EQ(Doc["functions"].asInt(),
            int64_t(CR.Prog->functions().size()));
}

TEST(StatsSchema, PerFunctionRowsFoldToAggregate) {
  CompileResult CR;
  telemetry::Telemetry Telem;
  json::Value Doc = parsedStatsDoc(CR, Telem);
  int64_t GraphBuilds = 0, SpillLoads = 0, MaxNodes = 0;
  for (const json::Value &Row : Doc["per_function"].asArray()) {
    ASSERT_TRUE(Row["function"].isString());
    EXPECT_FALSE(Row["function"].asString().empty());
    EXPECT_EQ(Row["status"].asString(), "allocated");
    expectAllocObject(Row["alloc"],
                      "$.per_function[" + Row["function"].asString() + "]");
    GraphBuilds += Row["alloc"]["graph_builds"].asInt();
    SpillLoads += Row["alloc"]["spill_loads_inserted"].asInt();
    MaxNodes = std::max(MaxNodes, Row["alloc"]["max_graph_nodes"].asInt());
  }
  // Summed counters sum across functions; high-water marks take the max.
  EXPECT_EQ(Doc["alloc"]["graph_builds"].asInt(), GraphBuilds);
  EXPECT_EQ(Doc["alloc"]["spill_loads_inserted"].asInt(), SpillLoads);
  EXPECT_EQ(Doc["alloc"]["max_graph_nodes"].asInt(), MaxNodes);
}

TEST(StatsSchema, CountersMonotoneAndTimersFinite) {
  CompileResult CR;
  telemetry::Telemetry Telem;
  json::Value Doc = parsedStatsDoc(CR, Telem);
  ASSERT_FALSE(Doc["counters"].asObject().empty());
  for (const auto &[Name, V] : Doc["counters"].asObject()) {
    ASSERT_TRUE(V.isInt()) << Name;
    EXPECT_GE(V.asInt(), 0) << Name;
  }
  for (const auto &[Name, V] : Doc["timers"].asObject()) {
    ASSERT_TRUE(V.isNumber()) << Name;
    EXPECT_GE(V.asDouble(), 0.0) << Name;
    // Every timer key carries the unit suffix.
    EXPECT_EQ(Name.substr(Name.size() - 2), "_s") << Name;
  }
  for (const auto &[Name, V] : Doc["timing"].asObject()) {
    ASSERT_TRUE(V.isNumber()) << Name;
    EXPECT_GE(V.asDouble(), 0.0) << Name;
  }
}

TEST(StatsSchema, TextReportMentionsTelemetry) {
  CompileOptions Options;
  Options.Allocator = AllocatorKind::Rap;
  Options.Alloc.K = 3;
  telemetry::Telemetry Telem;
  Options.Alloc.Telem = &Telem;
  CompileResult CR = compileMiniC(PressureSource, Options);
  ASSERT_TRUE(CR.ok()) << CR.Errors;
  ReportMeta Meta;
  Meta.Allocator = "rap";
  Meta.K = 3;
  std::string Text = statsText(CR, Meta);
  EXPECT_NE(Text.find("alloc stats (rap, k=3"), std::string::npos);
  EXPECT_NE(Text.find("telemetry:"), std::string::npos);
  EXPECT_NE(Text.find("rap.graph_builds"), std::string::npos);
}

TEST(StatsSchema, ServerSectionOnlyWhenServing) {
  CompileOptions Options;
  Options.Allocator = AllocatorKind::Rap;
  Options.Alloc.K = 3;
  CompileResult CR = compileMiniC(PressureSource, Options);
  ASSERT_TRUE(CR.ok()) << CR.Errors;

  // rapcc documents (Server.Enabled false) must not grow a "server" key —
  // existing consumers see byte-identical output.
  ReportMeta Meta;
  Meta.Allocator = "rap";
  Meta.K = 3;
  json::Value Plain;
  std::string Error;
  ASSERT_TRUE(json::parse(statsJson(CR, Meta).str(2), Plain, &Error)) << Error;
  EXPECT_FALSE(Plain.has("server"));
  EXPECT_EQ(statsText(CR, Meta).find("server:"), std::string::npos);

  // rapd documents carry the five serving counters, all non-negative ints.
  Meta.Server.Enabled = true;
  Meta.Server.CacheHits = 12;
  Meta.Server.CacheMisses = 3;
  Meta.Server.CacheBytes = 4096;
  Meta.Server.QueueDepthMax = 5;
  Meta.Server.RejectedRequests = 1;
  Meta.Server.DeadlineExceeded = 7;
  Meta.Server.Cancelled = 2;
  Meta.Server.WatchdogTrips = 1;
  Meta.Server.DrainMs = 2000;
  Meta.Server.DrainDegraded = true;
  json::Value Doc;
  ASSERT_TRUE(json::parse(statsJson(CR, Meta).str(2), Doc, &Error)) << Error;
  ASSERT_TRUE(Doc["server"].isObject());
  const json::Value &S = Doc["server"];
  EXPECT_EQ(S["cache_hits"].asInt(), 12);
  EXPECT_EQ(S["cache_misses"].asInt(), 3);
  EXPECT_EQ(S["cache_bytes"].asInt(), 4096);
  EXPECT_EQ(S["queue_depth_max"].asInt(), 5);
  EXPECT_EQ(S["rejected_requests"].asInt(), 1);
  // The crash-only serving counters (DESIGN.md §13).
  EXPECT_EQ(S["deadline_exceeded"].asInt(), 7);
  EXPECT_EQ(S["cancelled"].asInt(), 2);
  EXPECT_EQ(S["watchdog_trips"].asInt(), 1);
  EXPECT_EQ(S["drain_ms"].asInt(), 2000);
  EXPECT_TRUE(S["drain_degraded"].asBool());
  expectNoNulls(Doc["server"], "$.server");
  // No --cache-dir: the recovery sub-object is absent so in-memory-only
  // documents stay byte-identical to pre-§15 output.
  EXPECT_FALSE(S.has("recovery"));

  std::string Text = statsText(CR, Meta);
  EXPECT_NE(Text.find("server: cache hits=12 misses=3"), std::string::npos);
  EXPECT_NE(Text.find("server-drain: deadline-exceeded=7"), std::string::npos);
  EXPECT_EQ(Text.find("server-recovery:"), std::string::npos);

  // With a persistent store attached (--cache-dir), the recovery block
  // carries the §15 counters, all typed and non-null.
  Meta.Server.Recovery.Enabled = true;
  Meta.Server.Recovery.JournalFramesReplayed = 42;
  Meta.Server.Recovery.SnapshotLoaded = true;
  Meta.Server.Recovery.TornTailDropped = 17;
  Meta.Server.Recovery.Restarts = 3;
  json::Value PersistDoc;
  ASSERT_TRUE(json::parse(statsJson(CR, Meta).str(2), PersistDoc, &Error))
      << Error;
  const json::Value &Rec = PersistDoc["server"]["recovery"];
  ASSERT_TRUE(Rec.isObject());
  EXPECT_EQ(Rec["journal_frames_replayed"].asInt(), 42);
  EXPECT_TRUE(Rec["snapshot_loaded"].asBool());
  EXPECT_EQ(Rec["torn_tail_dropped"].asInt(), 17);
  EXPECT_EQ(Rec["restarts"].asInt(), 3);
  expectNoNulls(PersistDoc["server"], "$.server");
  std::string PersistText = statsText(CR, Meta);
  EXPECT_NE(PersistText.find("server-recovery: frames-replayed=42 "
                             "snapshot=yes torn-tail-dropped=17 restarts=3"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Chrome trace-event JSON
//===----------------------------------------------------------------------===//

TEST(StatsSchema, ChromeTraceWellFormed) {
  CompileOptions Options;
  Options.Allocator = AllocatorKind::Rap;
  Options.Alloc.K = 3;
  telemetry::Telemetry Telem;
  Options.Alloc.Telem = &Telem;
  CompileResult CR = compileMiniC(PressureSource, Options);
  ASSERT_TRUE(CR.ok()) << CR.Errors;

  std::ostringstream OS;
  Telem.writeChromeTrace(OS);
  json::Value Doc;
  std::string Error;
  ASSERT_TRUE(json::parse(OS.str(), Doc, &Error)) << Error;
  ASSERT_TRUE(Doc["traceEvents"].isArray());
  EXPECT_EQ(Doc["displayTimeUnit"].asString(), "ms");

  unsigned Complete = 0, Metadata = 0;
  for (const json::Value &E : Doc["traceEvents"].asArray()) {
    ASSERT_TRUE(E.isObject());
    const std::string &Ph = E["ph"].asString();
    ASSERT_TRUE(Ph == "X" || Ph == "M") << "unexpected phase " << Ph;
    ASSERT_TRUE(E["pid"].isInt());
    ASSERT_TRUE(E["tid"].isInt());
    ASSERT_TRUE(E["args"].isObject());
    if (Ph == "X") {
      ++Complete;
      EXPECT_FALSE(E["name"].asString().empty());
      EXPECT_EQ(E["cat"].asString(), "alloc");
      ASSERT_TRUE(E["ts"].isNumber());
      ASSERT_TRUE(E["dur"].isNumber());
      EXPECT_GE(E["ts"].asDouble(), 0.0);
      EXPECT_GE(E["dur"].asDouble(), 0.0);
      ASSERT_TRUE(E["args"]["function"].isString());
      if (E["name"].asString() == "rap_region")
        EXPECT_GE(E["args"]["region"].asInt(), 0);
    } else {
      ++Metadata;
      EXPECT_EQ(E["name"].asString(), "thread_name");
      EXPECT_EQ(E["args"]["name"].asString().rfind("worker ", 0), 0u);
    }
  }
  EXPECT_GT(Complete, 0u);
  EXPECT_GT(Metadata, 0u);
}

//===----------------------------------------------------------------------===//
// rap-bench-v1 and the shared bench flag parser
//===----------------------------------------------------------------------===//

TEST(StatsSchema, BenchEnvelopeWellFormed) {
  const BenchProgram *P = findBenchProgram("loop7");
  ASSERT_NE(P, nullptr);
  int64_t Want = bench::referenceChecksum(*P);
  CompileOptions Options;
  Options.Allocator = AllocatorKind::Rap;
  Options.Alloc.K = 3;
  bench::Measurement M = bench::measure(*P, Options, Want);

  json::Array Rows;
  json::Object Row;
  Row["benchmark"] = P->Name;
  Row["k"] = 3u;
  Row["rap"] = bench::measurementJson(M);
  Rows.push_back(json::Value(std::move(Row)));
  std::string Text = bench::benchDoc("table1_rap_vs_gra", std::move(Rows))
                         .str(2);

  json::Value Doc;
  std::string Error;
  ASSERT_TRUE(json::parse(Text, Doc, &Error)) << Error;
  EXPECT_EQ(Doc["schema"].asString(), "rap-bench-v1");
  EXPECT_EQ(Doc["bench"].asString(), "table1_rap_vs_gra");
  ASSERT_TRUE(Doc["rows"].isArray());
  ASSERT_EQ(Doc["rows"].asArray().size(), 1u);
  const json::Value &R = Doc["rows"].asArray()[0]["rap"];
  for (const char *Key :
       {"cycles", "loads", "spill_loads", "stores", "spill_stores", "copies",
        "calls", "checksum"})
    ASSERT_TRUE(R[Key].isInt()) << Key;
  ASSERT_TRUE(R["has_spill_code"].isBool());
  expectAllocObject(R["alloc"], "$.rows[0].rap.alloc");
  expectNoNulls(Doc, "$");
}

bench::BenchFlags parseArgs(std::vector<std::string> Args) {
  std::vector<char *> Argv;
  static std::string Name = "bench";
  Argv.push_back(Name.data());
  for (std::string &A : Args)
    Argv.push_back(A.data());
  return bench::parseBenchFlags(static_cast<int>(Argv.size()), Argv.data());
}

TEST(StatsSchema, BenchFlagsAccept) {
  bench::BenchFlags F = parseArgs({});
  EXPECT_TRUE(F.Ok);
  EXPECT_FALSE(F.Csv);
  EXPECT_FALSE(F.Json);
  EXPECT_TRUE(F.Ks.empty());

  F = parseArgs({"--csv"});
  EXPECT_TRUE(F.Ok && F.Csv);

  F = parseArgs({"--json", "--k=3,5,9"});
  ASSERT_TRUE(F.Ok) << F.Error;
  EXPECT_TRUE(F.Json);
  EXPECT_EQ(F.Ks, (std::vector<unsigned>{3, 5, 9}));

  F = parseArgs({"--k=17"});
  ASSERT_TRUE(F.Ok) << F.Error;
  EXPECT_EQ(F.Ks, (std::vector<unsigned>{17}));
}

TEST(StatsSchema, BenchFlagsReject) {
  EXPECT_FALSE(parseArgs({"--bogus"}).Ok);
  EXPECT_FALSE(parseArgs({"-csv"}).Ok);
  EXPECT_FALSE(parseArgs({"--k="}).Ok);
  EXPECT_FALSE(parseArgs({"--k=2"}).Ok);      // below the minimum of 3
  EXPECT_FALSE(parseArgs({"--k=3,x"}).Ok);    // trailing garbage
  EXPECT_FALSE(parseArgs({"--k=banana"}).Ok);
  EXPECT_FALSE(parseArgs({"--csv", "--json"}).Ok); // mutually exclusive
  EXPECT_FALSE(parseArgs({"--bogus"}).Error.empty());
}

} // namespace
