//===- tests/fuzz_differential_test.cpp - Differential fuzzing -------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-based differential testing (DESIGN.md oracle #2): random MiniC
/// programs must compute the same checksum under the unallocated reference,
/// GRA, and RAP at every register-set size; the assignment verifier must
/// also accept RAP's coloring. Each seed is one test case so failures name
/// their reproducer.
///
//===----------------------------------------------------------------------===//

#include "RandomProgram.h"

#include "driver/Pipeline.h"
#include "regalloc/AssignmentVerifier.h"
#include "regalloc/Rap.h"

#include "gtest/gtest.h"

using namespace rap;

namespace {

class FuzzDifferential : public ::testing::TestWithParam<unsigned> {};

TEST_P(FuzzDifferential, AllConfigsMatchReference) {
  unsigned Seed = GetParam();
  std::string Source = test::RandomProgramBuilder(Seed).build();

  CompileOptions RefOpts;
  RunResult Ref = compileAndRun(Source, RefOpts);
  ASSERT_TRUE(Ref.Ok) << "seed " << Seed << ": reference failed: "
                      << Ref.Error << "\n"
                      << Source;
  int64_t Want = Ref.ReturnValue.asInt();

  for (AllocatorKind Kind : {AllocatorKind::Gra, AllocatorKind::Rap}) {
    for (unsigned K : {3u, 5u, 7u, 9u}) {
      CompileOptions Opts;
      Opts.Allocator = Kind;
      Opts.Alloc.K = K;
      RunResult Got = compileAndRun(Source, Opts);
      const char *Name = Kind == AllocatorKind::Gra ? "gra" : "rap";
      ASSERT_TRUE(Got.Ok) << "seed " << Seed << " " << Name << " k=" << K
                          << ": " << Got.Error << "\n"
                          << Source;
      ASSERT_EQ(Got.ReturnValue.asInt(), Want)
          << "seed " << Seed << " " << Name << " k=" << K << "\n"
          << Source;
    }
  }
}

TEST_P(FuzzDifferential, RapColoringVerifies) {
  unsigned Seed = GetParam();
  std::string Source = test::RandomProgramBuilder(Seed).build();

  CompileOptions Opts; // unallocated
  CompileResult CR = compileMiniC(Source, Opts);
  ASSERT_TRUE(CR.ok()) << CR.Errors;
  for (const auto &F : CR.Prog->functions()) {
    AllocOptions AO;
    AO.K = 3 + (Seed % 4) * 2; // 3, 5, 7, or 9 depending on seed
    RapAllocator RA(*F, AO);
    InterferenceGraph Final = RA.allocRegion(F->root());
    auto Violations = verifyAssignment(*F, Final);
    std::string Report;
    for (const auto &V : Violations)
      Report += V.Text + "\n";
    EXPECT_TRUE(Violations.empty())
        << "seed " << Seed << " k=" << AO.K << " in " << F->name() << ":\n"
        << Report;
  }
}

TEST_P(FuzzDifferential, VariantConfigsMatchReference) {
  unsigned Seed = GetParam();
  std::string Source = test::RandomProgramBuilder(Seed).build();

  // Front-end options change the reference too; compare like with like.
  RegionGranularity G = Seed % 2 ? RegionGranularity::Merged
                                 : RegionGranularity::PerStatement;
  CopyStyle C = Seed % 3 ? CopyStyle::Naive : CopyStyle::Direct;

  CompileOptions RefOpts;
  RefOpts.Granularity = G;
  RefOpts.Copies = C;
  RunResult Ref = compileAndRun(Source, RefOpts);
  ASSERT_TRUE(Ref.Ok) << "seed " << Seed << ": " << Ref.Error;

  for (AllocatorKind Kind : {AllocatorKind::Gra, AllocatorKind::Rap}) {
    for (unsigned K : {3u, 6u}) {
      CompileOptions Opts;
      Opts.Allocator = Kind;
      Opts.Alloc.K = K;
      Opts.Alloc.Coalesce = true;
      Opts.Granularity = G;
      Opts.Copies = C;
      RunResult Got = compileAndRun(Source, Opts);
      const char *Name = Kind == AllocatorKind::Gra ? "gra" : "rap";
      ASSERT_TRUE(Got.Ok) << "seed " << Seed << " " << Name << " k=" << K
                          << " (coalesce/variant): " << Got.Error << "\n"
                          << Source;
      ASSERT_EQ(Got.ReturnValue.asInt(), Ref.ReturnValue.asInt())
          << "seed " << Seed << " " << Name << " k=" << K
          << " (coalesce/variant)\n"
          << Source;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferential, ::testing::Range(0u, 60u));

} // namespace
