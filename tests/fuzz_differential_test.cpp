//===- tests/fuzz_differential_test.cpp - Differential fuzzing -------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-based differential testing (DESIGN.md oracle #2): random MiniC
/// programs must compute the same checksum under the unallocated reference,
/// GRA, and RAP at every register-set size; the assignment verifier must
/// also accept RAP's coloring. Each seed is one test case so failures name
/// their reproducer.
///
//===----------------------------------------------------------------------===//

#include "fuzz/RandomProgram.h"
#include "fuzz/Reducer.h"
#include "fuzz/Runner.h"

#include "driver/Pipeline.h"
#include "regalloc/AssignmentVerifier.h"
#include "regalloc/Rap.h"

#include "gtest/gtest.h"

using namespace rap;

namespace {

class FuzzDifferential : public ::testing::TestWithParam<unsigned> {};

TEST_P(FuzzDifferential, AllConfigsMatchReference) {
  unsigned Seed = GetParam();
  std::string Source = fuzz::RandomProgramBuilder(Seed).build();

  CompileOptions RefOpts;
  RunResult Ref = compileAndRun(Source, RefOpts);
  ASSERT_TRUE(Ref.Ok) << "seed " << Seed << ": reference failed: "
                      << Ref.Error << "\n"
                      << Source;
  int64_t Want = Ref.ReturnValue.asInt();

  for (AllocatorKind Kind : {AllocatorKind::Gra, AllocatorKind::Rap}) {
    for (unsigned K : {3u, 5u, 7u, 9u}) {
      CompileOptions Opts;
      Opts.Allocator = Kind;
      Opts.Alloc.K = K;
      RunResult Got = compileAndRun(Source, Opts);
      const char *Name = Kind == AllocatorKind::Gra ? "gra" : "rap";
      ASSERT_TRUE(Got.Ok) << "seed " << Seed << " " << Name << " k=" << K
                          << ": " << Got.Error << "\n"
                          << Source;
      ASSERT_EQ(Got.ReturnValue.asInt(), Want)
          << "seed " << Seed << " " << Name << " k=" << K << "\n"
          << Source;
    }
  }
}

TEST_P(FuzzDifferential, RapColoringVerifies) {
  unsigned Seed = GetParam();
  std::string Source = fuzz::RandomProgramBuilder(Seed).build();

  CompileOptions Opts; // unallocated
  CompileResult CR = compileMiniC(Source, Opts);
  ASSERT_TRUE(CR.ok()) << CR.Errors;
  for (const auto &F : CR.Prog->functions()) {
    AllocOptions AO;
    AO.K = 3 + (Seed % 4) * 2; // 3, 5, 7, or 9 depending on seed
    RapAllocator RA(*F, AO);
    InterferenceGraph Final = RA.allocRegion(F->root());
    auto Violations = verifyAssignment(*F, Final);
    std::string Report;
    for (const auto &V : Violations)
      Report += V.Text + "\n";
    EXPECT_TRUE(Violations.empty())
        << "seed " << Seed << " k=" << AO.K << " in " << F->name() << ":\n"
        << Report;
  }
}

TEST_P(FuzzDifferential, VariantConfigsMatchReference) {
  unsigned Seed = GetParam();
  std::string Source = fuzz::RandomProgramBuilder(Seed).build();

  // Front-end options change the reference too; compare like with like.
  RegionGranularity G = Seed % 2 ? RegionGranularity::Merged
                                 : RegionGranularity::PerStatement;
  CopyStyle C = Seed % 3 ? CopyStyle::Naive : CopyStyle::Direct;

  CompileOptions RefOpts;
  RefOpts.Granularity = G;
  RefOpts.Copies = C;
  RunResult Ref = compileAndRun(Source, RefOpts);
  ASSERT_TRUE(Ref.Ok) << "seed " << Seed << ": " << Ref.Error;

  for (AllocatorKind Kind : {AllocatorKind::Gra, AllocatorKind::Rap}) {
    for (unsigned K : {3u, 6u}) {
      CompileOptions Opts;
      Opts.Allocator = Kind;
      Opts.Alloc.K = K;
      Opts.Alloc.Coalesce = true;
      Opts.Granularity = G;
      Opts.Copies = C;
      RunResult Got = compileAndRun(Source, Opts);
      const char *Name = Kind == AllocatorKind::Gra ? "gra" : "rap";
      ASSERT_TRUE(Got.Ok) << "seed " << Seed << " " << Name << " k=" << K
                          << " (coalesce/variant): " << Got.Error << "\n"
                          << Source;
      ASSERT_EQ(Got.ReturnValue.asInt(), Ref.ReturnValue.asInt())
          << "seed " << Seed << " " << Name << " k=" << K
          << " (coalesce/variant)\n"
          << Source;
    }
  }
}

/// Fault-injection sweep: with every injection site armed in turn, the
/// degradation path (error -> pristine clone -> spill-everything fallback,
/// self-checked by the assignment verifier) must still produce a program
/// that computes the reference checksum. 'color' and 'rewrite' fire in
/// every function (each colors at least once and rewrites exactly once);
/// 'spill' fires only when the seed actually spills, so engagement is
/// asserted only for the first two.
TEST_P(FuzzDifferential, FaultInjectionDegradesCorrectly) {
  unsigned Seed = GetParam();
  if (Seed % 4 != 1)
    GTEST_SKIP() << "sweep runs on a quarter of the seeds to bound runtime";
  std::string Source = fuzz::RandomProgramBuilder(Seed).build();

  CompileOptions RefOpts;
  RunResult Ref = compileAndRun(Source, RefOpts);
  ASSERT_TRUE(Ref.Ok) << "seed " << Seed << ": " << Ref.Error;
  int64_t Want = Ref.ReturnValue.asInt();

  for (const char *Spec : {"color:1", "spill:1", "rewrite:1"}) {
    for (AllocatorKind Kind : {AllocatorKind::Gra, AllocatorKind::Rap}) {
      for (unsigned K : {3u, 5u}) {
        CompileOptions Opts;
        Opts.Allocator = Kind;
        Opts.Alloc.K = K;
        Opts.Alloc.FallbackOnError = true;
        Opts.Alloc.VerifyAssignments = true;
        Opts.Alloc.Faults = FaultPlan::fromString(Spec);
        CompileResult CR = compileMiniC(Source, Opts);
        const char *Name = Kind == AllocatorKind::Gra ? "gra" : "rap";
        ASSERT_TRUE(CR.ok()) << "seed " << Seed << " " << Name << " k=" << K
                             << " " << Spec << ": " << CR.Errors;
        if (std::string(Spec) != "spill:1") {
          EXPECT_TRUE(CR.degraded())
              << "seed " << Seed << " " << Name << " k=" << K << " " << Spec
              << ": fault never fired";
          for (const AllocOutcome &O : CR.AllocOutcomes)
            EXPECT_EQ(O.Status, AllocStatus::Fallback) << O.Function;
        }
        for (const auto &F : CR.Prog->functions())
          EXPECT_TRUE(F->isAllocated()) << F->name();
        Interpreter Interp(*CR.Prog);
        RunResult Got = Interp.run();
        ASSERT_TRUE(Got.Ok) << "seed " << Seed << " " << Name << " k=" << K
                            << " " << Spec << ": " << Got.Error;
        ASSERT_EQ(Got.ReturnValue.asInt(), Want)
            << "seed " << Seed << " " << Name << " k=" << K << " " << Spec
            << "\n" << Source;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferential, ::testing::Range(0u, 60u));

/// The failure-to-repro path end to end, on the differential oracle itself:
/// arm a coloring fault with fallback off, confirm the contract runner
/// reports a reducible failure, and require delta debugging to shrink the
/// generator program to a minimal repro with the identical signature
/// (acceptance bound: <= 25% of the original).
TEST(FuzzReduction, InjectedFailureShrinksToMinimalRepro) {
  for (unsigned Seed : {0u, 17u}) {
    std::string Source = fuzz::RandomProgramBuilder(Seed).build();

    fuzz::FuzzLimits Limits;
    Limits.Faults = FaultPlan::fromString("color:1");
    fuzz::FuzzReport Original = fuzz::runContract(Source, Limits);
    ASSERT_EQ(Original.Outcome, fuzz::FuzzOutcome::AllocFailure)
        << "seed " << Seed << ": " << Original.Detail;

    auto StillFails = [&](const std::string &Candidate) {
      fuzz::FuzzReport R = fuzz::runContract(Candidate, Limits);
      return R.failing() && R.Signature == Original.Signature;
    };
    fuzz::ReduceResult Red = fuzz::reduceSource(Source, StillFails);

    ASSERT_TRUE(StillFails(Red.Reduced))
        << "seed " << Seed << ": reduction lost the failure:\n"
        << Red.Reduced;
    EXPECT_LE(Red.Reduced.size() * 4, Source.size())
        << "seed " << Seed << ": reduced " << Source.size() << " -> "
        << Red.Reduced.size() << " bytes (bound is 25%):\n"
        << Red.Reduced;
  }
}

} // namespace
