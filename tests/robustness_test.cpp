//===- tests/robustness_test.cpp - Hardened-pipeline checks -----------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the robustness layer (DESIGN.md "Robustness architecture"):
/// fault-plan parsing, resource guards (spill rounds, graph bytes, wall
/// clock) in both strict and fallback modes, per-function fault isolation
/// under the parallel driver, strict-mode error reporting through
/// CompileResult, function cloning, and the spill-everything fallback
/// allocator used directly.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "ir/Clone.h"
#include "regalloc/SpillEverything.h"
#include "support/Env.h"

#include "gtest/gtest.h"

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

using namespace rap;

namespace {

/// Same shape as the parallel-determinism workload: several functions with
/// enough pressure to spill at small k, so guards and fallbacks actually
/// trigger.
const char *MultiFunctionSource = R"(
int ga[16];

int fill(int n) {
  int i;
  int acc = 1;
  for (i = 0; i < n; i = i + 1) {
    acc = acc * 3 + i;
    ga[i] = acc;
  }
  return acc;
}

int pressure(int n) {
  int a = 1; int b = 2; int c = 3; int d = 4;
  int e = 5; int f = 6; int g = 7; int h = 8;
  int i;
  for (i = 0; i < n; i = i + 1) {
    a = a + b; b = b + c; c = c + d; d = d + e;
    e = e + f; f = f + g; g = g + h; h = h + a;
    if (a > 1000) { a = a - 1000; }
  }
  return a + b + c + d + e + f + g + h;
}

int main() {
  int x = fill(16);
  int y = pressure(20);
  return x + y;
}
)";

int64_t referenceValue(const std::string &Source) {
  CompileOptions RefOpts; // unallocated
  RunResult Ref = compileAndRun(Source, RefOpts);
  EXPECT_TRUE(Ref.Ok) << Ref.Error;
  return Ref.ReturnValue.asInt();
}

/// Compiles with fallback enabled and asserts the program still computes
/// the reference value; returns the result for outcome inspection.
CompileResult compileDegradable(const std::string &Source,
                                const CompileOptions &Opts, int64_t Want) {
  CompileResult CR = compileMiniC(Source, Opts);
  EXPECT_TRUE(CR.ok()) << CR.Errors;
  if (CR.ok()) {
    Interpreter Interp(*CR.Prog);
    RunResult R = Interp.run();
    EXPECT_TRUE(R.Ok) << R.Error;
    if (R.Ok)
      EXPECT_EQ(R.ReturnValue.asInt(), Want);
  }
  return CR;
}

//===----------------------------------------------------------------------===//
// Fault-plan parsing
//===----------------------------------------------------------------------===//

TEST(FaultPlanParse, SingleArm) {
  FaultPlan P = FaultPlan::fromString("color:2");
  ASSERT_EQ(P.Arms.size(), 1u);
  EXPECT_EQ(P.Arms[0].Site, FaultSite::Coloring);
  EXPECT_EQ(P.Arms[0].Nth, 2u);
  EXPECT_TRUE(P.Arms[0].Function.empty());
}

TEST(FaultPlanParse, TargetedArm) {
  FaultPlan P = FaultPlan::fromString("spill:1@fill");
  ASSERT_EQ(P.Arms.size(), 1u);
  EXPECT_EQ(P.Arms[0].Site, FaultSite::SpillInsert);
  EXPECT_EQ(P.Arms[0].Nth, 1u);
  EXPECT_EQ(P.Arms[0].Function, "fill");
}

TEST(FaultPlanParse, CommaList) {
  FaultPlan P = FaultPlan::fromString("color:1,rewrite:3@main");
  ASSERT_EQ(P.Arms.size(), 2u);
  EXPECT_EQ(P.Arms[0].Site, FaultSite::Coloring);
  EXPECT_EQ(P.Arms[1].Site, FaultSite::PhysicalRewrite);
  EXPECT_EQ(P.Arms[1].Nth, 3u);
  EXPECT_EQ(P.Arms[1].Function, "main");
}

TEST(FaultPlanParse, EmptyAndBlankEntries) {
  EXPECT_TRUE(FaultPlan::fromString("").empty());
  FaultPlan P = FaultPlan::fromString("color:1,,spill:2");
  EXPECT_EQ(P.Arms.size(), 2u);
}

TEST(FaultPlanParse, RegionSite) {
  FaultPlan P = FaultPlan::fromString("region:4@deep");
  ASSERT_EQ(P.Arms.size(), 1u);
  EXPECT_EQ(P.Arms[0].Site, FaultSite::RegionAlloc);
  EXPECT_EQ(P.Arms[0].Nth, 4u);
  EXPECT_EQ(P.Arms[0].Function, "deep");
}

TEST(FaultPlanParse, Malformed) {
  EXPECT_THROW(FaultPlan::fromString("bogus:1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::fromString("color"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::fromString("color:x"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::fromString("color:0"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::fromString("color:-2"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::fromString("color:1x"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::fromString("color:1,spill"), std::invalid_argument);
}

TEST(FaultPlanParse, InjectorFiltersByFunction) {
  FaultPlan P = FaultPlan::fromString("color:1@other");
  FaultInjector Mine(P, "mine");
  EXPECT_FALSE(Mine.armed());
  Mine.hit(FaultSite::Coloring); // disarmed: must not throw
  FaultInjector Theirs(P, "other");
  EXPECT_TRUE(Theirs.armed());
  EXPECT_THROW(Theirs.hit(FaultSite::Coloring), AllocError);
}

//===----------------------------------------------------------------------===//
// Resource guards
//===----------------------------------------------------------------------===//

class ResourceGuards : public ::testing::TestWithParam<AllocatorKind> {};

TEST_P(ResourceGuards, SpillRoundBudgetStrict) {
  // One round is not enough at k=3 for the pressure function; strict mode
  // must fail the compile with a structured non-convergence diagnostic.
  CompileOptions Opts;
  Opts.Allocator = GetParam();
  Opts.Alloc.K = 3;
  Opts.Alloc.MaxSpillRounds = 1;
  Opts.Alloc.FallbackOnError = false;
  CompileResult CR = compileMiniC(MultiFunctionSource, Opts);
  EXPECT_FALSE(CR.ok());
  EXPECT_NE(CR.Errors.find("non-convergence"), std::string::npos)
      << CR.Errors;
}

TEST_P(ResourceGuards, SpillRoundBudgetDegrades) {
  int64_t Want = referenceValue(MultiFunctionSource);
  CompileOptions Opts;
  Opts.Allocator = GetParam();
  Opts.Alloc.K = 3;
  Opts.Alloc.MaxSpillRounds = 1;
  Opts.Alloc.FallbackOnError = true;
  Opts.Alloc.VerifyAssignments = true;
  CompileResult CR = compileDegradable(MultiFunctionSource, Opts, Want);
  EXPECT_TRUE(CR.degraded());
  bool SawNonConvergence = false;
  for (const AllocOutcome &O : CR.AllocOutcomes)
    if (O.degraded()) {
      EXPECT_EQ(O.ErrorKind, AllocErrorKind::NonConvergence) << O.Error;
      SawNonConvergence = true;
    }
  EXPECT_TRUE(SawNonConvergence);
}

TEST_P(ResourceGuards, GraphByteBudgetStrict) {
  // No real interference graph fits in 16 bytes.
  CompileOptions Opts;
  Opts.Allocator = GetParam();
  Opts.Alloc.K = 3;
  Opts.Alloc.MaxGraphBytes = 16;
  Opts.Alloc.FallbackOnError = false;
  CompileResult CR = compileMiniC(MultiFunctionSource, Opts);
  EXPECT_FALSE(CR.ok());
  EXPECT_NE(CR.Errors.find("resource-limit"), std::string::npos)
      << CR.Errors;
}

TEST_P(ResourceGuards, GraphByteBudgetDegrades) {
  int64_t Want = referenceValue(MultiFunctionSource);
  CompileOptions Opts;
  Opts.Allocator = GetParam();
  Opts.Alloc.K = 3;
  Opts.Alloc.MaxGraphBytes = 16;
  Opts.Alloc.FallbackOnError = true;
  Opts.Alloc.VerifyAssignments = true;
  CompileResult CR = compileDegradable(MultiFunctionSource, Opts, Want);
  EXPECT_TRUE(CR.degraded());
  for (const AllocOutcome &O : CR.AllocOutcomes) {
    EXPECT_EQ(O.Status, AllocStatus::Fallback) << O.Function;
    EXPECT_EQ(O.ErrorKind, AllocErrorKind::ResourceLimit) << O.Error;
  }
}

TEST_P(ResourceGuards, WallClockBudgetDegrades) {
  // A sub-nanosecond budget is exceeded by the time the first round-boundary
  // check runs (liveness alone takes longer), so every function degrades.
  int64_t Want = referenceValue(MultiFunctionSource);
  CompileOptions Opts;
  Opts.Allocator = GetParam();
  Opts.Alloc.K = 3;
  Opts.Alloc.MaxAllocSeconds = 1e-12;
  Opts.Alloc.FallbackOnError = true;
  Opts.Alloc.VerifyAssignments = true;
  CompileResult CR = compileDegradable(MultiFunctionSource, Opts, Want);
  EXPECT_TRUE(CR.degraded());
  for (const AllocOutcome &O : CR.AllocOutcomes)
    if (O.degraded())
      EXPECT_EQ(O.ErrorKind, AllocErrorKind::ResourceLimit) << O.Error;
}

INSTANTIATE_TEST_SUITE_P(Allocators, ResourceGuards,
                         ::testing::Values(AllocatorKind::Gra,
                                           AllocatorKind::Rap),
                         [](const auto &Info) {
                           return Info.param == AllocatorKind::Gra ? "gra"
                                                                   : "rap";
                         });

//===----------------------------------------------------------------------===//
// Fault isolation under the parallel driver
//===----------------------------------------------------------------------===//

TEST(FaultIsolation, PoisonedFunctionDegradesAlone) {
  // Acceptance criterion: poison one function; at every thread count only
  // that function degrades, and every other function's allocated code is
  // byte-identical to a fault-free serial run.
  int64_t Want = referenceValue(MultiFunctionSource);

  CompileOptions Clean;
  Clean.Allocator = AllocatorKind::Rap;
  Clean.Alloc.K = 3;
  CompileResult Baseline = compileMiniC(MultiFunctionSource, Clean);
  ASSERT_TRUE(Baseline.ok()) << Baseline.Errors;
  ASSERT_FALSE(Baseline.degraded());
  std::vector<std::string> CleanCode;
  for (const auto &F : Baseline.Prog->functions())
    CleanCode.push_back(F->str());

  for (unsigned Threads : {1u, 2u, 4u}) {
    CompileOptions Opts = Clean;
    Opts.Alloc.Threads = Threads;
    Opts.Alloc.FallbackOnError = true;
    Opts.Alloc.VerifyAssignments = true;
    Opts.Alloc.Faults = FaultPlan::fromString("color:1@pressure");
    CompileResult CR = compileDegradable(MultiFunctionSource, Opts, Want);
    ASSERT_TRUE(CR.ok());
    ASSERT_EQ(CR.AllocOutcomes.size(), CleanCode.size());
    for (size_t I = 0; I != CR.AllocOutcomes.size(); ++I) {
      const AllocOutcome &O = CR.AllocOutcomes[I];
      if (O.Function == "pressure") {
        EXPECT_EQ(O.Status, AllocStatus::Fallback)
            << "threads=" << Threads << ": " << O.Error;
        EXPECT_EQ(O.ErrorKind, AllocErrorKind::InjectedFault);
      } else {
        EXPECT_EQ(O.Status, AllocStatus::Allocated)
            << O.Function << " threads=" << Threads << ": " << O.Error;
        EXPECT_EQ(CR.Prog->functions()[I]->str(), CleanCode[I])
            << O.Function << " differs from fault-free serial run at threads="
            << Threads;
      }
    }
  }
}

TEST(FaultIsolation, RegionFaultUnderRegionThreads) {
  // Inject at the region-allocation site while the speculative
  // region-parallel first round is active (RegionThreads > 1, Grain=1 so
  // every region is a task owner). The speculation must discard, re-arm the
  // injector, rerun the classic walk, hit the same fault there, and degrade
  // only the targeted function — with every other function byte-identical
  // to a fault-free serial run and the program still computing the
  // reference value through the verified fallback.
  int64_t Want = referenceValue(MultiFunctionSource);

  CompileOptions Clean;
  Clean.Allocator = AllocatorKind::Rap;
  Clean.Alloc.K = 3;
  CompileResult Baseline = compileMiniC(MultiFunctionSource, Clean);
  ASSERT_TRUE(Baseline.ok()) << Baseline.Errors;
  std::vector<std::string> CleanCode;
  for (const auto &F : Baseline.Prog->functions())
    CleanCode.push_back(F->str());

  for (unsigned RegionThreads : {2u, 4u}) {
    CompileOptions Opts = Clean;
    Opts.Alloc.RegionThreads = RegionThreads;
    Opts.Alloc.RegionGrain = 1;
    Opts.Alloc.FallbackOnError = true;
    Opts.Alloc.VerifyAssignments = true;
    Opts.Alloc.Faults = FaultPlan::fromString("region:2@pressure");
    CompileResult CR = compileDegradable(MultiFunctionSource, Opts, Want);
    ASSERT_TRUE(CR.ok());
    ASSERT_EQ(CR.AllocOutcomes.size(), CleanCode.size());
    for (size_t I = 0; I != CR.AllocOutcomes.size(); ++I) {
      const AllocOutcome &O = CR.AllocOutcomes[I];
      if (O.Function == "pressure") {
        EXPECT_EQ(O.Status, AllocStatus::Fallback)
            << "region threads=" << RegionThreads << ": " << O.Error;
        EXPECT_EQ(O.ErrorKind, AllocErrorKind::InjectedFault);
      } else {
        EXPECT_EQ(O.Status, AllocStatus::Allocated)
            << O.Function << " region threads=" << RegionThreads << ": "
            << O.Error;
        EXPECT_EQ(CR.Prog->functions()[I]->str(), CleanCode[I])
            << O.Function
            << " differs from fault-free serial run at region threads="
            << RegionThreads;
      }
    }
  }
}

TEST(FaultIsolation, RegionFaultStrictUnderRegionThreads) {
  // Strict mode with the same speculative-phase injection: the classic
  // rerun re-raises the fault as a structured error and the compile fails
  // deterministically.
  CompileOptions Opts;
  Opts.Allocator = AllocatorKind::Rap;
  Opts.Alloc.K = 3;
  Opts.Alloc.RegionThreads = 4;
  Opts.Alloc.RegionGrain = 1;
  Opts.Alloc.FallbackOnError = false;
  Opts.Alloc.Faults = FaultPlan::fromString("region:2@pressure");
  CompileResult CR = compileMiniC(MultiFunctionSource, Opts);
  EXPECT_FALSE(CR.ok());
  EXPECT_NE(CR.Errors.find("injected-fault in 'pressure'"),
            std::string::npos)
      << CR.Errors;
}

TEST(FaultIsolation, StrictModeFailsTheCompile) {
  CompileOptions Opts;
  Opts.Allocator = AllocatorKind::Rap;
  Opts.Alloc.K = 3;
  Opts.Alloc.FallbackOnError = false;
  Opts.Alloc.Faults = FaultPlan::fromString("color:1@pressure");
  CompileResult CR = compileMiniC(MultiFunctionSource, Opts);
  EXPECT_FALSE(CR.ok());
  EXPECT_EQ(CR.Prog, nullptr);
  EXPECT_NE(CR.Errors.find("allocation failed"), std::string::npos)
      << CR.Errors;
  EXPECT_NE(CR.Errors.find("injected-fault in 'pressure'"),
            std::string::npos)
      << CR.Errors;
}

TEST(FaultIsolation, DegradationIsReportedInErrors) {
  // Fallback keeps the compile green but the summary must still surface
  // through CompileResult::Errors for callers that only look there.
  CompileOptions Opts;
  Opts.Allocator = AllocatorKind::Rap;
  Opts.Alloc.K = 3;
  Opts.Alloc.FallbackOnError = true;
  Opts.Alloc.Faults = FaultPlan::fromString("color:1@pressure");
  CompileResult CR = compileMiniC(MultiFunctionSource, Opts);
  ASSERT_TRUE(CR.ok()) << CR.Errors;
  EXPECT_NE(CR.Errors.find("pressure: degraded to spill-everything"),
            std::string::npos)
      << CR.Errors;
}

//===----------------------------------------------------------------------===//
// Function cloning and the fallback allocator
//===----------------------------------------------------------------------===//

TEST(CloneFunction, ClonePrintsIdentically) {
  CompileOptions Opts; // unallocated
  CompileResult CR = compileMiniC(MultiFunctionSource, Opts);
  ASSERT_TRUE(CR.ok()) << CR.Errors;
  for (const auto &F : CR.Prog->functions()) {
    std::unique_ptr<IlocFunction> Copy = cloneFunction(*F);
    EXPECT_EQ(Copy->str(), F->str()) << F->name();
    EXPECT_EQ(Copy->isAllocated(), F->isAllocated());
  }
}

TEST(CloneFunction, AllocatedClonePrintsIdentically) {
  CompileOptions Opts;
  Opts.Allocator = AllocatorKind::Rap;
  Opts.Alloc.K = 3;
  CompileResult CR = compileMiniC(MultiFunctionSource, Opts);
  ASSERT_TRUE(CR.ok()) << CR.Errors;
  for (const auto &F : CR.Prog->functions())
    EXPECT_EQ(cloneFunction(*F)->str(), F->str()) << F->name();
}

TEST(SpillEverything, AllocatesVerifiablyAndRunsCorrectly) {
  int64_t Want = referenceValue(MultiFunctionSource);
  CompileOptions Opts; // unallocated
  CompileResult CR = compileMiniC(MultiFunctionSource, Opts);
  ASSERT_TRUE(CR.ok()) << CR.Errors;
  for (auto &F : CR.Prog->functions()) {
    AllocOptions AO;
    AO.K = 3;
    AO.VerifyAssignments = true; // self-check throws on a bad assignment
    AllocStats Stats = allocateSpillEverything(*F, AO);
    EXPECT_TRUE(F->isAllocated()) << F->name();
    EXPECT_EQ(Stats.GraphBuilds, 1u);
  }
  Interpreter Interp(*CR.Prog);
  RunResult R = Interp.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.ReturnValue.asInt(), Want);
}

TEST(SpillEverything, RejectsAllocatedInput) {
  CompileOptions Opts;
  Opts.Allocator = AllocatorKind::Rap;
  Opts.Alloc.K = 5;
  CompileResult CR = compileMiniC(MultiFunctionSource, Opts);
  ASSERT_TRUE(CR.ok()) << CR.Errors;
  AllocOptions AO;
  AO.K = 5;
  EXPECT_THROW(allocateSpillEverything(*CR.Prog->functions()[0], AO),
               AllocError);
}

//===----------------------------------------------------------------------===//
// Env cache semantics
//===----------------------------------------------------------------------===//

TEST(EnvCache, FirstQueryWins) {
  // Unset at first read: stays unset even after setenv.
  ASSERT_EQ(std::getenv("RAP_TEST_ENV_UNSET"), nullptr);
  EXPECT_FALSE(env::flag("RAP_TEST_ENV_UNSET"));
  setenv("RAP_TEST_ENV_UNSET", "1", 1);
  EXPECT_FALSE(env::flag("RAP_TEST_ENV_UNSET"));
  unsetenv("RAP_TEST_ENV_UNSET");

  // Set at first read: value is latched across later changes.
  setenv("RAP_TEST_ENV_SET", "first", 1);
  ASSERT_TRUE(env::get("RAP_TEST_ENV_SET").has_value());
  EXPECT_EQ(*env::get("RAP_TEST_ENV_SET"), "first");
  setenv("RAP_TEST_ENV_SET", "second", 1);
  EXPECT_EQ(*env::get("RAP_TEST_ENV_SET"), "first");
  unsetenv("RAP_TEST_ENV_SET");
}

} // namespace
