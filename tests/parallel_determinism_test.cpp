//===- tests/parallel_determinism_test.cpp - Parallel driver checks ---------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel per-function allocation driver must be invisible in the
/// output: any thread count produces byte-identical allocated code and
/// structurally equal stats versus a serial run. These tests compile a
/// multi-function program once per configuration and diff the results.
///
/// The whole binary additionally runs with RAP_VERIFY_LIVENESS set (see the
/// file-scope initializer), so every incremental liveness solve performed by
/// the allocators here is cross-checked against a cold recompute.
///
//===----------------------------------------------------------------------===//

#include "benchprogs/BenchPrograms.h"
#include "driver/Pipeline.h"
#include "driver/Report.h"
#include "fuzz/ScaleProgram.h"
#include "ir/Linearize.h"
#include "support/Hash.h"
#include "support/Json.h"
#include "support/Stats.h"

#include "gtest/gtest.h"

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

using namespace rap;

namespace {

// Latch the liveness verification env flag before any Liveness is built in
// this process (the flag is read once and cached).
const int EnvSetter = []() {
  setenv("RAP_VERIFY_LIVENESS", "1", 1);
  return 0;
}();

/// Several functions with loop nests and enough simultaneously-live scalars
/// to force spilling at small k, so the parallel runs cover the full spill /
/// refresh machinery, not just coloring.
const char *MultiFunctionSource = R"(
int ga[16];

int fill(int n) {
  int i;
  int acc = 1;
  for (i = 0; i < n; i = i + 1) {
    acc = acc * 3 + i;
    ga[i] = acc;
  }
  return acc;
}

int pressure(int n) {
  int a = 1; int b = 2; int c = 3; int d = 4;
  int e = 5; int f = 6; int g = 7; int h = 8;
  int i;
  for (i = 0; i < n; i = i + 1) {
    a = a + b; b = b + c; c = c + d; d = d + e;
    e = e + f; f = f + g; g = g + h; h = h + a;
    if (a > 1000) { a = a - 1000; }
  }
  return a + b + c + d + e + f + g + h;
}

int nested(int n) {
  int i; int j; int s = 0;
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) {
      s = s + ga[(i + j) - ((i + j) / 16) * 16];
    }
  }
  return s;
}

int main() {
  int x = fill(16);
  int y = pressure(20);
  int z = nested(8);
  return x + y + z;
}
)";

struct AllocRun {
  std::vector<std::string> Functions; ///< printed allocated code, in order
  AllocStats Stats;
};

AllocRun runAllocation(const std::string &Source, AllocatorKind Kind,
                       unsigned K, unsigned Threads) {
  CompileOptions Options;
  Options.Allocator = Kind;
  Options.Alloc.K = K;
  Options.Alloc.Threads = Threads;
  CompileResult CR = compileMiniC(Source, Options);
  EXPECT_TRUE(CR.ok()) << CR.Errors;
  AllocRun Run;
  if (!CR.ok())
    return Run;
  for (const auto &F : CR.Prog->functions())
    Run.Functions.push_back(F->str());
  Run.Stats = CR.Alloc;
  return Run;
}

void expectIdenticalRuns(const std::string &Source, AllocatorKind Kind,
                         unsigned K) {
  AllocRun Serial = runAllocation(Source, Kind, K, 1);
  for (unsigned Threads : {2u, 4u}) {
    AllocRun Parallel = runAllocation(Source, Kind, K, Threads);
    ASSERT_EQ(Serial.Functions.size(), Parallel.Functions.size());
    for (size_t I = 0; I != Serial.Functions.size(); ++I)
      EXPECT_EQ(Serial.Functions[I], Parallel.Functions[I])
          << "function " << I << " differs at threads=" << Threads;
    EXPECT_TRUE(Serial.Stats.structuralEq(Parallel.Stats))
        << "stats differ at threads=" << Threads;
  }
}

TEST(ParallelDeterminism, RapMatchesSerial) {
  for (unsigned K : {3u, 5u})
    expectIdenticalRuns(MultiFunctionSource, AllocatorKind::Rap, K);
}

TEST(ParallelDeterminism, GraMatchesSerial) {
  for (unsigned K : {3u, 5u})
    expectIdenticalRuns(MultiFunctionSource, AllocatorKind::Gra, K);
}

TEST(ParallelDeterminism, BenchProgramsUnderRap) {
  // Spill-heavy Table 1 programs through RAP at k=3: many refresh rounds,
  // each incremental liveness solve verified against a cold recompute by
  // the RAP_VERIFY_LIVENESS latch above.
  for (const char *Name : {"loop7", "hsort", "queens"}) {
    const BenchProgram *P = findBenchProgram(Name);
    ASSERT_NE(P, nullptr);
    expectIdenticalRuns(P->Source, AllocatorKind::Rap, 3);
  }
}

//===----------------------------------------------------------------------===//
// Telemetry determinism: the stats document and the trace content must be
// invariant under the thread count. Wall clocks can't be: the stats JSON is
// compared after erasing exactly its "timing"/"timers" sections, the trace
// after dropping per-lane metadata and zeroing ts/dur/tid. Everything else
// — counters, slice names, regions, args, per-function rows — must match
// byte for byte.
//===----------------------------------------------------------------------===//

/// rap-stats-v1 text with the documented non-deterministic sections erased.
std::string normalizedStatsJson(const std::string &Source, unsigned Threads) {
  telemetry::Telemetry Telem;
  CompileOptions Options;
  Options.Allocator = AllocatorKind::Rap;
  Options.Alloc.K = 3;
  Options.Alloc.Threads = Threads;
  Options.Alloc.Telem = &Telem;
  CompileResult CR = compileMiniC(Source, Options);
  EXPECT_TRUE(CR.ok()) << CR.Errors;
  ReportMeta Meta;
  Meta.Allocator = "rap";
  Meta.K = 3;
  Meta.Threads = 1; // pin the metadata so only real divergence can differ
  json::Value Doc = statsJson(CR, Meta);
  Doc.asObject().erase("timing");
  Doc.asObject().erase("timers");
  return Doc.str(2);
}

/// Chrome trace with wall clocks and lane assignment normalized away:
/// metadata events dropped, ts/dur/tid zeroed. Slice names, order, regions,
/// and deterministic args all survive normalization.
std::string normalizedTrace(const std::string &Source, unsigned Threads) {
  telemetry::Telemetry Telem;
  CompileOptions Options;
  Options.Allocator = AllocatorKind::Rap;
  Options.Alloc.K = 3;
  Options.Alloc.Threads = Threads;
  Options.Alloc.Telem = &Telem;
  CompileResult CR = compileMiniC(Source, Options);
  EXPECT_TRUE(CR.ok()) << CR.Errors;
  std::ostringstream OS;
  Telem.writeChromeTrace(OS);
  json::Value Doc;
  std::string Error;
  EXPECT_TRUE(json::parse(OS.str(), Doc, &Error)) << Error;
  json::Array Kept;
  for (json::Value &E : Doc.asObject()["traceEvents"].asArray()) {
    if (E["ph"].asString() != "X")
      continue;
    E.asObject()["ts"] = 0;
    E.asObject()["dur"] = 0;
    E.asObject()["tid"] = 0;
    Kept.push_back(std::move(E));
  }
  Doc.asObject()["traceEvents"] = json::Value(std::move(Kept));
  return Doc.str(2);
}

TEST(ParallelDeterminism, StatsJsonThreadInvariant) {
  std::string Serial = normalizedStatsJson(MultiFunctionSource, 1);
  // The document must actually carry telemetry before invariance means
  // anything.
  EXPECT_NE(Serial.find("rap.graph_builds"), std::string::npos);
  for (unsigned Threads : {2u, 4u})
    EXPECT_EQ(Serial, normalizedStatsJson(MultiFunctionSource, Threads))
        << "stats JSON diverged at threads=" << Threads;
}

TEST(ParallelDeterminism, TraceThreadInvariant) {
  std::string Serial = normalizedTrace(MultiFunctionSource, 1);
  EXPECT_NE(Serial.find("rap_region"), std::string::npos);
  for (unsigned Threads : {2u, 4u})
    EXPECT_EQ(Serial, normalizedTrace(MultiFunctionSource, Threads))
        << "trace content diverged at threads=" << Threads;
}

TEST(ParallelDeterminism, StatsJsonStableAcrossRepeatedRuns) {
  std::string First = normalizedStatsJson(MultiFunctionSource, 4);
  for (int Run = 0; Run != 3; ++Run)
    EXPECT_EQ(First, normalizedStatsJson(MultiFunctionSource, 4))
        << "run " << Run;
}

//===----------------------------------------------------------------------===//
// Region-level parallelism (the speculative first round over the
// series-parallel decomposition, DESIGN.md §14): any RegionThreads value
// must be invisible in the output — byte-identical ILOC, equal stats, same
// FNV output hash, same interpreted checksum as the serial region walk.
//===----------------------------------------------------------------------===//

struct RegionRun {
  std::vector<std::string> Functions; ///< printed allocated code
  uint64_t OutputHash = 0;            ///< FNV over linearized ILOC
  int64_t Checksum = 0;
  AllocStats Stats;
};

RegionRun runWithRegionThreads(const std::string &Source, unsigned K,
                               unsigned RegionThreads, unsigned Grain) {
  CompileOptions Options;
  Options.Allocator = AllocatorKind::Rap;
  Options.Alloc.K = K;
  Options.Alloc.RegionThreads = RegionThreads;
  Options.Alloc.RegionGrain = Grain;
  CompileResult CR = compileMiniC(Source, Options);
  EXPECT_TRUE(CR.ok()) << CR.Errors;
  RegionRun Run;
  if (!CR.ok())
    return Run;
  Hasher H;
  for (const auto &F : CR.Prog->functions()) {
    Run.Functions.push_back(F->str());
    H.str(linearize(*F).str());
  }
  Run.OutputHash = H.value();
  Run.Stats = CR.Alloc;
  RunResult R = Interpreter(*CR.Prog).run();
  EXPECT_TRUE(R.Ok) << R.Error;
  if (R.Ok)
    Run.Checksum = R.ReturnValue.asInt();
  return Run;
}

void expectRegionThreadInvariance(const std::string &Source, unsigned K,
                                  unsigned Grain) {
  RegionRun Serial = runWithRegionThreads(Source, K, 1, Grain);
  for (unsigned RT : {2u, 8u}) {
    RegionRun Parallel = runWithRegionThreads(Source, K, RT, Grain);
    ASSERT_EQ(Serial.Functions.size(), Parallel.Functions.size());
    for (size_t I = 0; I != Serial.Functions.size(); ++I)
      EXPECT_EQ(Serial.Functions[I], Parallel.Functions[I])
          << "function " << I << " differs at region threads=" << RT;
    EXPECT_EQ(Serial.OutputHash, Parallel.OutputHash)
        << "output hash differs at region threads=" << RT;
    EXPECT_EQ(Serial.Checksum, Parallel.Checksum)
        << "checksum differs at region threads=" << RT;
    EXPECT_TRUE(Serial.Stats.structuralEq(Parallel.Stats))
        << "stats differ at region threads=" << RT;
  }
}

TEST(ParallelDeterminism, RegionThreadsBitIdenticalOnDeepFunction) {
  // The bench workload: spill-free at k=12, so the speculative parallel
  // round engages and commits rather than falling back to the classic walk.
  fuzz::ScaleProgramConfig C;
  C.Seed = 7;
  C.DeepDepth = 4;
  C.DeepFanout = 3;
  C.PressureVars = 2;
  std::string Src = fuzz::ScaleProgramBuilder(C).buildDeepFunction();
  expectRegionThreadInvariance(Src, 12, /*Grain=*/16);
}

TEST(ParallelDeterminism, RegionThreadsBitIdenticalWhenSpilling) {
  // Under pressure (k=3) every speculative round aborts at the first spill
  // candidate and the classic walk reruns — also bit-identical, exercising
  // the discard path rather than the commit path.
  fuzz::ScaleProgramConfig C;
  C.Seed = 7;
  C.DeepDepth = 4;
  C.DeepFanout = 2;
  C.PressureVars = 4;
  std::string Src = fuzz::ScaleProgramBuilder(C).buildDeepFunction();
  expectRegionThreadInvariance(Src, 3, /*Grain=*/8);
}

TEST(ParallelDeterminism, RegionThreadsComposeWithFunctionThreads) {
  // Both parallel axes at once: the per-function pool is shared with the
  // region phase (AllocOptions::RegionPool) and the result must still match
  // the fully serial run on a generated multi-function module.
  fuzz::ScaleProgramConfig C;
  C.Seed = 21;
  C.NumFunctions = 6;
  C.StmtsPerFunction = 5;
  C.PressureVars = 2;
  std::string Src = fuzz::ScaleProgramBuilder(C).buildModule();

  CompileOptions Serial;
  Serial.Allocator = AllocatorKind::Rap;
  Serial.Alloc.K = 8;
  CompileResult Base = compileMiniC(Src, Serial);
  ASSERT_TRUE(Base.ok()) << Base.Errors;

  CompileOptions Both = Serial;
  Both.Alloc.Threads = 4;
  Both.Alloc.RegionThreads = 4;
  Both.Alloc.RegionGrain = 8;
  CompileResult CR = compileMiniC(Src, Both);
  ASSERT_TRUE(CR.ok()) << CR.Errors;

  ASSERT_EQ(Base.Prog->functions().size(), CR.Prog->functions().size());
  for (size_t I = 0; I != Base.Prog->functions().size(); ++I)
    EXPECT_EQ(Base.Prog->functions()[I]->str(),
              CR.Prog->functions()[I]->str());
  EXPECT_TRUE(Base.Alloc.structuralEq(CR.Alloc));
}

TEST(ParallelDeterminism, RegionStatsJsonAndTraceInvariant) {
  // Telemetry must splice speculative per-region scratch scopes back in the
  // sequential order: normalized stats JSON and trace content may not vary
  // with the region thread count.
  fuzz::ScaleProgramConfig C;
  C.Seed = 7;
  C.DeepDepth = 3;
  C.DeepFanout = 3;
  C.PressureVars = 2;
  std::string Src = fuzz::ScaleProgramBuilder(C).buildDeepFunction();

  auto Normalized = [&](unsigned RegionThreads,
                        std::string &StatsOut, std::string &TraceOut) {
    telemetry::Telemetry Telem;
    CompileOptions Options;
    Options.Allocator = AllocatorKind::Rap;
    Options.Alloc.K = 12;
    Options.Alloc.RegionThreads = RegionThreads;
    Options.Alloc.RegionGrain = 8;
    Options.Alloc.Telem = &Telem;
    CompileResult CR = compileMiniC(Src, Options);
    ASSERT_TRUE(CR.ok()) << CR.Errors;
    ReportMeta Meta;
    Meta.Allocator = "rap";
    Meta.K = 12;
    Meta.Threads = 1;
    json::Value Doc = statsJson(CR, Meta);
    Doc.asObject().erase("timing");
    Doc.asObject().erase("timers");
    StatsOut = Doc.str(2);

    std::ostringstream OS;
    Telem.writeChromeTrace(OS);
    json::Value Trace;
    std::string Error;
    ASSERT_TRUE(json::parse(OS.str(), Trace, &Error)) << Error;
    json::Array Kept;
    for (json::Value &E : Trace.asObject()["traceEvents"].asArray()) {
      if (E["ph"].asString() != "X")
        continue;
      E.asObject()["ts"] = 0;
      E.asObject()["dur"] = 0;
      E.asObject()["tid"] = 0;
      Kept.push_back(std::move(E));
    }
    Trace.asObject()["traceEvents"] = json::Value(std::move(Kept));
    TraceOut = Trace.str(2);
  };

  std::string SerialStats, SerialTrace;
  Normalized(1, SerialStats, SerialTrace);
  EXPECT_NE(SerialTrace.find("rap_region"), std::string::npos);
  for (unsigned RT : {2u, 8u}) {
    std::string Stats, Trace;
    Normalized(RT, Stats, Trace);
    EXPECT_EQ(SerialStats, Stats)
        << "stats JSON diverged at region threads=" << RT;
    EXPECT_EQ(SerialTrace, Trace)
        << "trace content diverged at region threads=" << RT;
  }
}

TEST(ParallelDeterminism, MoreThreadsThanFunctions) {
  // Thread count far above the function count must clamp, not misbehave.
  AllocRun Serial = runAllocation(MultiFunctionSource, AllocatorKind::Rap,
                                  3, 1);
  AllocRun Wide = runAllocation(MultiFunctionSource, AllocatorKind::Rap,
                                3, 64);
  ASSERT_EQ(Serial.Functions.size(), Wide.Functions.size());
  for (size_t I = 0; I != Serial.Functions.size(); ++I)
    EXPECT_EQ(Serial.Functions[I], Wide.Functions[I]);
  EXPECT_TRUE(Serial.Stats.structuralEq(Wide.Stats));
}

} // namespace
