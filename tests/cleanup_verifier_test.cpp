//===- tests/cleanup_verifier_test.cpp - Cleanup passes + verifier ------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the dataflow spill cleanup (cross-block reload removal,
/// dead spill-store elimination) and the independent assignment verifier.
///
//===----------------------------------------------------------------------===//

#include "ir/Linearize.h"
#include "regalloc/AssignmentVerifier.h"
#include "regalloc/GlobalSpillCleanup.h"

#include "gtest/gtest.h"

using namespace rap;

namespace {

/// Builds a function with an if-diamond:
///   entry: <Entry code>; cbr c -> then, join
///   then:  <Then code>
///   join:  <Join code>; ret
struct DiamondBuilder {
  IlocFunction F{"test"};
  PdgNode *Entry, *Then, *Join;
  PdgNode *Pred;

  DiamondBuilder() {
    PdgNode *Root = F.createNode(PdgNodeKind::Region);
    F.setRoot(Root);
    Entry = addStmt(Root);
    Pred = F.createNode(PdgNodeKind::Predicate);
    Pred->Parent = Root;
    Root->Children.push_back(Pred);
    Pred->TrueLabel = F.newLabel();
    Pred->FalseLabel = F.newLabel();
    Instr *Br = F.createInstr(Opcode::Cbr);
    Br->Src = {0};
    Br->Label0 = Pred->TrueLabel;
    Br->Label1 = Pred->FalseLabel;
    Pred->Branch = Br;
    Pred->TrueRegion = F.createNode(PdgNodeKind::Region);
    Pred->TrueRegion->Parent = Pred;
    Then = addStmt(Pred->TrueRegion);
    Join = addStmt(Root);
    for (int I = 0; I < 4; ++I)
      F.newSpillSlot();
    // Register namespace for the hand-written code below (the verifier's
    // liveness needs the universe size).
    for (int I = 0; I < 16; ++I)
      F.newVReg();
  }

  PdgNode *addStmt(PdgNode *Region) {
    PdgNode *S = F.createNode(PdgNodeKind::Statement);
    S->Parent = Region;
    Region->Children.push_back(S);
    return S;
  }

  Instr *emit(PdgNode *S, Opcode Op, Reg Dst, std::vector<Reg> Src,
              int Slot = -1) {
    Instr *I = F.createInstr(Op);
    I->Dst = Dst;
    I->Src = std::move(Src);
    I->Slot = Slot;
    S->Code.push_back(I);
    return I;
  }

  unsigned countOps(Opcode Op) {
    unsigned N = 0;
    for (Instr *I : linearize(F).Instrs)
      N += I->Op == Op;
    return N;
  }
};

TEST(GlobalCleanup, CrossBlockRedundantReloadRemoved) {
  DiamondBuilder B;
  // entry: r1 = ldm s0 ; cbr r0
  B.emit(B.Entry, Opcode::LdSpill, 1, {}, 0);
  // then: r2 = r1 + r1 (no redef of r1, no store to s0)
  B.emit(B.Then, Opcode::Add, 2, {1, 1});
  // join: r1 = ldm s0  <- redundant on BOTH paths
  B.emit(B.Join, Opcode::LdSpill, 1, {}, 0);
  B.emit(B.Join, Opcode::Ret, NoReg, {1});
  B.F.setAllocated(4);
  GlobalCleanupResult R = globalSpillCleanup(B.F);
  EXPECT_EQ(R.RemovedLoads, 1u);
  EXPECT_EQ(B.countOps(Opcode::LdSpill), 1u);
}

TEST(GlobalCleanup, ReloadKeptWhenOnePathInvalidates) {
  DiamondBuilder B;
  B.emit(B.Entry, Opcode::LdSpill, 1, {}, 0);
  // then: stm s0, r2 — the slot changes on this path
  B.emit(B.Then, Opcode::StSpill, NoReg, {2}, 0);
  B.emit(B.Join, Opcode::LdSpill, 1, {}, 0); // must stay
  B.emit(B.Join, Opcode::Ret, NoReg, {1});
  B.F.setAllocated(4);
  GlobalCleanupResult R = globalSpillCleanup(B.F);
  EXPECT_EQ(R.RemovedLoads, 0u);
  EXPECT_EQ(B.countOps(Opcode::LdSpill), 2u);
}

TEST(GlobalCleanup, ReloadKeptWhenRegisterClobberedOnOnePath) {
  DiamondBuilder B;
  B.emit(B.Entry, Opcode::LdSpill, 1, {}, 0);
  // then: r1 = r2 + r2 clobbers r1
  B.emit(B.Then, Opcode::Add, 1, {2, 2});
  B.emit(B.Join, Opcode::LdSpill, 1, {}, 0); // must stay
  B.emit(B.Join, Opcode::Ret, NoReg, {1});
  B.F.setAllocated(4);
  GlobalCleanupResult R = globalSpillCleanup(B.F);
  EXPECT_EQ(R.RemovedLoads, 0u);
}

TEST(GlobalCleanup, DeadStoreRemoved) {
  DiamondBuilder B;
  // A store whose slot is never read again is dead (slots die with the
  // frame).
  B.emit(B.Entry, Opcode::StSpill, NoReg, {1}, 2);
  B.emit(B.Join, Opcode::Ret, NoReg, {1});
  B.F.setAllocated(4);
  GlobalCleanupResult R = globalSpillCleanup(B.F);
  EXPECT_EQ(R.RemovedStores, 1u);
  EXPECT_EQ(B.countOps(Opcode::StSpill), 0u);
}

TEST(GlobalCleanup, StoreKeptWhenAnyPathReads) {
  DiamondBuilder B;
  B.emit(B.Entry, Opcode::StSpill, NoReg, {1}, 2);
  B.emit(B.Entry, Opcode::LoadI, 1, {}); // clobber r1: no forwarding
  B.emit(B.Then, Opcode::LdSpill, 3, {}, 2); // reads on the then path
  B.emit(B.Join, Opcode::Ret, NoReg, {1});
  B.F.setAllocated(4);
  GlobalCleanupResult R = globalSpillCleanup(B.F);
  EXPECT_EQ(B.countOps(Opcode::StSpill), 1u);
  EXPECT_EQ(B.countOps(Opcode::LdSpill), 1u);
  (void)R;
}

TEST(GlobalCleanup, OverwrittenStoreIsDead) {
  DiamondBuilder B;
  B.emit(B.Entry, Opcode::StSpill, NoReg, {1}, 2);
  B.emit(B.Entry, Opcode::StSpill, NoReg, {2}, 2); // kills the first
  B.emit(B.Join, Opcode::LdSpill, 3, {}, 2);
  B.emit(B.Join, Opcode::Ret, NoReg, {3});
  B.F.setAllocated(4);
  GlobalCleanupResult R = globalSpillCleanup(B.F);
  // The first store dies; the second feeds the load... which then makes r3
  // a copy of r2 (the value is still in a register), freeing the second
  // store too on the next fixpoint round. Net: at most one spill op left.
  EXPECT_GE(R.RemovedStores, 1u);
  EXPECT_LE(B.countOps(Opcode::StSpill), 1u);
}

TEST(GlobalCleanup, LoadBecomesCopyWhenValueInOtherRegister) {
  DiamondBuilder B;
  B.emit(B.Entry, Opcode::StSpill, NoReg, {2}, 1);
  B.emit(B.Join, Opcode::LdSpill, 3, {}, 1); // value still in r2
  B.emit(B.Join, Opcode::Ret, NoReg, {3});
  B.F.setAllocated(4);
  GlobalCleanupResult R = globalSpillCleanup(B.F);
  EXPECT_EQ(R.LoadsToCopies, 1u);
  EXPECT_EQ(B.countOps(Opcode::Mv), 1u);
}

//===----------------------------------------------------------------------===//
// Assignment verifier
//===----------------------------------------------------------------------===//

TEST(Verifier, AcceptsAValidColoring) {
  DiamondBuilder B;
  // r10 = r11 + r11 with distinct colors; nothing overlaps.
  B.emit(B.Entry, Opcode::LoadI, 10, {});
  B.emit(B.Entry, Opcode::Add, 11, {10, 10});
  B.emit(B.Join, Opcode::Ret, NoReg, {11});
  InterferenceGraph G;
  G.getOrCreateNode(10);
  G.getOrCreateNode(11);
  G.addEdge(10, 11);
  G.node(0).Color = 0;
  G.node(1).Color = 1;
  EXPECT_TRUE(verifyAssignment(B.F, G).empty());
}

TEST(Verifier, FlagsClobberingDefinition) {
  DiamondBuilder B;
  B.emit(B.Entry, Opcode::LoadI, 10, {});
  B.emit(B.Entry, Opcode::LoadI, 11, {}); // defined while r10 live
  B.emit(B.Join, Opcode::Add, 12, {10, 11});
  B.emit(B.Join, Opcode::Ret, NoReg, {12});
  InterferenceGraph G;
  G.getOrCreateNode(10);
  G.getOrCreateNode(11);
  G.getOrCreateNode(12);
  G.node(0).Color = 0;
  G.node(1).Color = 0; // WRONG: same color, simultaneously live
  G.node(2).Color = 1;
  auto V = verifyAssignment(B.F, G);
  ASSERT_FALSE(V.empty());
  EXPECT_EQ(V[0].Clobbered, 10u);
  EXPECT_EQ(V[0].Defined, 11u);
}

TEST(Verifier, CopySourceMayShareColor) {
  DiamondBuilder B;
  B.emit(B.Entry, Opcode::LoadI, 10, {});
  B.emit(B.Entry, Opcode::Mv, 11, {10});
  B.emit(B.Join, Opcode::Ret, NoReg, {11});
  InterferenceGraph G;
  G.getOrCreateNode(10);
  G.getOrCreateNode(11);
  G.node(0).Color = 2;
  G.node(1).Color = 2; // legal: copy source exception
  EXPECT_TRUE(verifyAssignment(B.F, G).empty());
}

} // namespace
