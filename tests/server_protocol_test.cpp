//===- tests/server_protocol_test.cpp - rapd protocol + infrastructure ------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile server's building blocks, bottom-up:
///
///  * fingerprintFunction — stable across recompiles of identical source,
///    sensitive to body edits and to every option that steers allocation;
///  * BoundedQueue — tryPush rejection (the backpressure primitive), drain
///    after close, depth high-water mark;
///  * ShardPool — all submitted tasks run exactly once, the barrier holds,
///    and a skewed batch is actually stolen by idle shards;
///  * parseRequest — accepts the documented schema, rejects each malformed
///    field with a stable diagnostic;
///  * Server::handleLine — single requests, ordered batch arrays, the
///    bad-request path, stats counters, and byte-budget admission turning
///    oversized lines into "overloaded" + retry_after_ms rejections.
///
//===----------------------------------------------------------------------===//

#include "server/Server.h"
#include "support/BoundedQueue.h"

#include "gtest/gtest.h"

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

using namespace rap;
using namespace rap::server;

namespace {

//===----------------------------------------------------------------------===//
// Fingerprints.
//===----------------------------------------------------------------------===//

/// Lowers \p Source (no allocation) and returns the fingerprint of the
/// first function under \p Kind/\p Options.
uint64_t fingerprintOf(const std::string &Source,
                       AllocatorKind Kind = AllocatorKind::Rap,
                       AllocOptions Options = AllocOptions()) {
  CompileOptions CO;
  CO.Allocator = AllocatorKind::None;
  CompileResult CR = compileMiniC(Source, CO);
  EXPECT_TRUE(CR.ok()) << CR.Errors;
  return fingerprintFunction(*CR.Prog->functions()[0], Kind, Options);
}

const char *FpSource = "int main() {\n"
                       "  int s = 0;\n"
                       "  for (int i = 0; i < 10; i = i + 1) { s = s + i; }\n"
                       "  return s;\n"
                       "}\n";

TEST(Fingerprint, StableAcrossRecompiles) {
  EXPECT_EQ(fingerprintOf(FpSource), fingerprintOf(FpSource));
}

TEST(Fingerprint, SensitiveToBodyEdits) {
  std::string Edited(FpSource);
  size_t Pos = Edited.find("10");
  ASSERT_NE(Pos, std::string::npos);
  Edited.replace(Pos, 2, "11");
  EXPECT_NE(fingerprintOf(FpSource), fingerprintOf(Edited));
}

TEST(Fingerprint, SensitiveToEveryAllocationKnob) {
  uint64_t Base = fingerprintOf(FpSource);
  EXPECT_NE(Base, fingerprintOf(FpSource, AllocatorKind::Gra));

  AllocOptions O;
  O.K = 7;
  EXPECT_NE(Base, fingerprintOf(FpSource, AllocatorKind::Rap, O));

  O = AllocOptions();
  O.SpillMovement = !O.SpillMovement;
  EXPECT_NE(Base, fingerprintOf(FpSource, AllocatorKind::Rap, O));

  O = AllocOptions();
  O.Peephole = !O.Peephole;
  EXPECT_NE(Base, fingerprintOf(FpSource, AllocatorKind::Rap, O));

  O = AllocOptions();
  O.Coalesce = !O.Coalesce;
  EXPECT_NE(Base, fingerprintOf(FpSource, AllocatorKind::Rap, O));
}

TEST(Fingerprint, IgnoresThreadCount) {
  // Threads schedule work; they may never change what the cache replays.
  AllocOptions O;
  O.Threads = 8;
  EXPECT_EQ(fingerprintOf(FpSource),
            fingerprintOf(FpSource, AllocatorKind::Rap, O));
}

//===----------------------------------------------------------------------===//
// BoundedQueue.
//===----------------------------------------------------------------------===//

TEST(BoundedQueue, TryPushRejectsWhenFull) {
  BoundedQueue<int> Q(2);
  EXPECT_TRUE(Q.tryPush(1));
  EXPECT_TRUE(Q.tryPush(2));
  EXPECT_FALSE(Q.tryPush(3)); // the backpressure path
  EXPECT_EQ(Q.depth(), 2u);
  EXPECT_EQ(Q.depthMax(), 2u);
  int V = 0;
  EXPECT_TRUE(Q.pop(V));
  EXPECT_EQ(V, 1);
  EXPECT_TRUE(Q.tryPush(3)); // space freed
}

TEST(BoundedQueue, DrainsAfterClose) {
  BoundedQueue<int> Q(4);
  Q.tryPush(1);
  Q.tryPush(2);
  Q.close();
  EXPECT_FALSE(Q.tryPush(3)); // closed queues admit nothing
  int V = 0;
  EXPECT_TRUE(Q.pop(V));
  EXPECT_TRUE(Q.pop(V));
  EXPECT_EQ(V, 2);
  EXPECT_FALSE(Q.pop(V)); // closed and drained
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
  BoundedQueue<int> Q(1);
  std::atomic<bool> Returned{false};
  std::thread Consumer([&] {
    int V = 0;
    bool Got = Q.pop(V);
    EXPECT_FALSE(Got);
    Returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Q.close();
  Consumer.join();
  EXPECT_TRUE(Returned.load());
}

//===----------------------------------------------------------------------===//
// ShardPool.
//===----------------------------------------------------------------------===//

TEST(ShardPool, RunsEveryTaskExactlyOnce) {
  ShardPool Pool(3);
  constexpr unsigned N = 64;
  std::vector<std::atomic<unsigned>> Ran(N);
  TaskGroup Group;
  Group.expect(N);
  for (unsigned I = 0; I != N; ++I)
    Pool.submit(/*Hint=*/I, [&Ran, I] { Ran[I].fetch_add(1); }, &Group);
  Group.wait();
  for (unsigned I = 0; I != N; ++I)
    EXPECT_EQ(Ran[I].load(), 1u) << "task " << I;
  EXPECT_EQ(Pool.tasksRun(), N);
}

TEST(ShardPool, SkewedBatchIsStolen) {
  ShardPool Pool(4);
  constexpr unsigned N = 64;
  std::atomic<unsigned> Ran{0};
  TaskGroup Group;
  Group.expect(N);
  // Every task lands on shard 0 (the one-request affinity pattern); the
  // other three shards have nothing and must steal to keep busy.
  for (unsigned I = 0; I != N; ++I)
    Pool.submit(/*Hint=*/0, [&Ran] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      Ran.fetch_add(1);
    }, &Group);
  Group.wait();
  EXPECT_EQ(Ran.load(), N);
  EXPECT_GT(Pool.tasksStolen(), 0u);
  EXPECT_GT(Pool.queueDepthMax(), 1u);
}

TEST(ShardPool, ThrowingTaskStillReleasesTheBarrier) {
  ShardPool Pool(2);
  TaskGroup Group;
  Group.expect(2);
  std::atomic<unsigned> Ran{0};
  Pool.submit(0, [] { throw std::runtime_error("task failure"); }, &Group);
  Pool.submit(1, [&Ran] { Ran.fetch_add(1); }, &Group);
  Group.wait(); // must not hang
  EXPECT_EQ(Ran.load(), 1u);
}

//===----------------------------------------------------------------------===//
// parseRequest.
//===----------------------------------------------------------------------===//

json::Value parseJson(const std::string &Text) {
  json::Value V;
  std::string Error;
  EXPECT_TRUE(json::parse(Text, V, &Error)) << Error;
  return V;
}

TEST(ParseRequest, AcceptsTheDocumentedSchema) {
  Request R;
  std::string Error;
  ASSERT_TRUE(parseRequest(
      parseJson("{\"id\":7,\"op\":\"compile\",\"source\":\"int main() { "
                "return 0; }\",\"options\":{\"alloc\":\"gra\",\"k\":4,"
                "\"granularity\":\"merged\",\"copies\":\"direct\","
                "\"run\":true,\"fuel\":1000}}"),
      R, Error))
      << Error;
  EXPECT_TRUE(R.HasId);
  EXPECT_EQ(R.Id, 7);
  EXPECT_EQ(R.Op, RequestOp::Compile);
  EXPECT_EQ(R.Options.Allocator, AllocatorKind::Gra);
  EXPECT_EQ(R.Options.K, 4u);
  EXPECT_EQ(R.Options.Granularity, RegionGranularity::Merged);
  EXPECT_EQ(R.Options.Copies, CopyStyle::Direct);
  EXPECT_TRUE(R.Options.Run);
  EXPECT_EQ(R.Options.Fuel, 1000u);
}

TEST(ParseRequest, RejectsEachMalformedField) {
  auto Fails = [](const std::string &Text) {
    Request R;
    std::string Error;
    bool Ok = parseRequest(parseJson(Text), R, Error);
    EXPECT_FALSE(Ok) << Text;
    EXPECT_FALSE(Error.empty());
    return Error;
  };
  EXPECT_NE(Fails("{}").find("missing 'op'"), std::string::npos);
  EXPECT_NE(Fails("{\"op\":\"frobnicate\"}").find("unknown op"),
            std::string::npos);
  Fails("{\"op\":\"compile\"}");                            // no source
  Fails("{\"id\":\"x\",\"op\":\"ping\"}");                  // non-int id
  Fails("{\"op\":\"compile\",\"source\":\"\",\"options\":{\"k\":2}}");
  Fails("{\"op\":\"compile\",\"source\":\"\",\"options\":{\"alloc\":\"x\"}}");
  Fails("{\"op\":\"compile\",\"source\":\"\",\"options\":{\"fuel\":0}}");
  Fails("{\"op\":\"compile\",\"source\":\"\",\"options\":3}");
}

//===----------------------------------------------------------------------===//
// Server::handleLine.
//===----------------------------------------------------------------------===//

const char *TinySource = "int main() { return 41; }";

std::string compileLine(int Id, const char *Source) {
  json::Object Opts;
  Opts["alloc"] = "rap";
  Opts["k"] = 3;
  json::Object Req;
  Req["id"] = Id;
  Req["op"] = "compile";
  Req["source"] = Source;
  Req["options"] = json::Value(std::move(Opts));
  return json::Value(std::move(Req)).str();
}

TEST(ServerHandleLine, CompileStatsAndBatch) {
  ServerConfig Config;
  Config.Service.Shards = 2;
  Server S(Config);

  json::Value Cold = parseJson(S.handleLine(compileLine(1, TinySource)));
  EXPECT_TRUE(Cold["ok"].asBool());
  EXPECT_EQ(Cold["cache_misses"].asInt(), 1);
  json::Value Warm = parseJson(S.handleLine(compileLine(2, TinySource)));
  EXPECT_EQ(Warm["cache_hits"].asInt(), 1);
  EXPECT_EQ(Warm["output_hash"].asString(), Cold["output_hash"].asString());

  // A JSON-array line is one batch: responses in request order.
  json::Value Batch = parseJson(S.handleLine(
      "[{\"id\":3,\"op\":\"ping\"},{\"id\":4,\"op\":\"stats\"}]"));
  ASSERT_TRUE(Batch.isArray());
  ASSERT_EQ(Batch.asArray().size(), 2u);
  EXPECT_EQ(Batch.asArray()[0]["kind"].asString(), "pong");
  const json::Value &Stats = Batch.asArray()[1]["stats"];
  EXPECT_EQ(Stats["cache_hits"].asInt(), 1);
  EXPECT_EQ(Stats["cache_misses"].asInt(), 1);
  EXPECT_EQ(Stats["rejected_requests"].asInt(), 0);

  json::Value Bad = parseJson(S.handleLine("this is not json"));
  EXPECT_FALSE(Bad["ok"].asBool());
  EXPECT_EQ(Bad["kind"].asString(), "bad-request");

  json::Value Broken = parseJson(S.handleLine(compileLine(5, "int main( {")));
  EXPECT_FALSE(Broken["ok"].asBool());
  EXPECT_EQ(Broken["kind"].asString(), "compile-error");
}

TEST(ServerHandleLine, AdmissionRejectsOversizedLinesWithRetryAfter) {
  ServerConfig Config;
  Config.Service.Shards = 1;
  Config.MaxInflightBytes = 64; // admits pings, rejects any real compile
  Config.RetryAfterMs = 125;
  Server S(Config);

  std::string Line = compileLine(1, TinySource);
  ASSERT_GT(Line.size(), Config.MaxInflightBytes);
  json::Value Rejected = parseJson(S.handleLine(Line));
  EXPECT_FALSE(Rejected["ok"].asBool());
  EXPECT_EQ(Rejected["kind"].asString(), "overloaded");
  EXPECT_EQ(Rejected["retry_after_ms"].asInt(), 125);
  EXPECT_EQ(S.rejectedRequests(), 1u);

  // The budget is released per line, so small requests still get through
  // after a rejection — degradation, not a wedge.
  json::Value Pong = parseJson(S.handleLine("{\"id\":2,\"op\":\"ping\"}"));
  EXPECT_TRUE(Pong["ok"].asBool());
  EXPECT_EQ(Pong["kind"].asString(), "pong");
}

} // namespace
