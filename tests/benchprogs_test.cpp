//===- tests/benchprogs_test.cpp - Table 1 workload correctness ------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every Table 1 program must compile, run, and produce the same checksum
/// under GRA and RAP at every register-set size as the unallocated
/// reference — the oracle the Table 1 harness depends on.
///
//===----------------------------------------------------------------------===//

#include "benchprogs/BenchPrograms.h"
#include "driver/Pipeline.h"

#include "gtest/gtest.h"

using namespace rap;

namespace {

class BenchProgramsCorrect : public ::testing::TestWithParam<int> {};

TEST_P(BenchProgramsCorrect, AllocatorsMatchReference) {
  const BenchProgram &P = benchPrograms()[GetParam()];

  CompileOptions RefOpts;
  RunResult Ref = compileAndRun(P.Source, RefOpts);
  ASSERT_TRUE(Ref.Ok) << P.Name << ": " << Ref.Error;
  ASSERT_NE(Ref.ReturnValue.asInt(), 0)
      << P.Name << ": checksum should be nonzero";

  for (AllocatorKind Kind : {AllocatorKind::Gra, AllocatorKind::Rap}) {
    for (unsigned K : {3u, 5u, 7u, 9u}) {
      CompileOptions Opts;
      Opts.Allocator = Kind;
      Opts.Alloc.K = K;
      RunResult Got = compileAndRun(P.Source, Opts);
      const char *Name = Kind == AllocatorKind::Gra ? "gra" : "rap";
      ASSERT_TRUE(Got.Ok)
          << P.Name << " " << Name << " k=" << K << ": " << Got.Error;
      EXPECT_EQ(Got.ReturnValue.asInt(), Ref.ReturnValue.asInt())
          << P.Name << " " << Name << " k=" << K;
    }
  }
}

TEST(BenchProgramsInventory, ThirtySevenRoutines) {
  // The paper's Table 1 has 37 rows; keep the reproduction at parity.
  EXPECT_EQ(benchPrograms().size(), 37u);
  EXPECT_NE(findBenchProgram("loop7"), nullptr);
  EXPECT_NE(findBenchProgram("queens"), nullptr);
  EXPECT_EQ(findBenchProgram("bogus"), nullptr);
}

std::string benchName(const ::testing::TestParamInfo<int> &Info) {
  return benchPrograms()[Info.param].Name;
}

INSTANTIATE_TEST_SUITE_P(
    Table1, BenchProgramsCorrect,
    ::testing::Range(0, static_cast<int>(benchPrograms().size())),
    benchName);

} // namespace
