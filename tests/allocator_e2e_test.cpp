//===- tests/allocator_e2e_test.cpp - Allocation correctness ---------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end allocation correctness: for a battery of programs, the result
/// computed by GRA- and RAP-allocated code at every register-set size must
/// equal the unallocated (infinite-register) reference run. This is the
/// primary oracle from DESIGN.md §6.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include "gtest/gtest.h"

using namespace rap;

namespace {

struct ProgramCase {
  const char *Name;
  const char *Source;
};

const ProgramCase Programs[] = {
    {"straightline", R"(
      int main() {
        int a = 3; int b = 4; int c = 5; int d = 6; int e = 7;
        int f = a * b + c * d + e;
        int g = f - a + b * 2;
        return f * 100 + g;
      }
    )"},
    {"deep_expression", R"(
      int main() {
        int a = 2; int b = 3; int c = 5; int d = 7; int e = 11; int f = 13;
        return (a*b + c*d) * (e + f) - (a + b + c + d + e + f)
             + (a*d - b*c) * (f - e) + a*a*a;
      }
    )"},
    {"branches", R"(
      int main() {
        int x = 10; int y = 20; int acc = 0;
        if (x < y) { acc = acc + x; } else { acc = acc + y; }
        if (x > 5) {
          if (y > 15) { acc = acc * 2; } else { acc = acc * 3; }
        }
        if (!(x == y) && (acc > 0 || y < 0)) { acc = acc + 1; }
        return acc;
      }
    )"},
    {"loop_pressure", R"(
      int main() {
        int a = 1; int b = 2; int c = 3; int d = 4; int e = 5;
        int f = 6; int g = 7; int h = 8;
        int i = 0; int acc = 0;
        while (i < 20) {
          acc = acc + a*b + c*d + e*f + g*h;
          a = a + 1; b = b + 2; c = c + 3; d = d + 1;
          e = e + 2; f = f + 1; g = g + 1; h = h + 2;
          i = i + 1;
        }
        return acc % 100000;
      }
    )"},
    {"nested_loops", R"(
      int t[25];
      int main() {
        int n = 5;
        for (int i = 0; i < n; i = i + 1) {
          for (int j = 0; j < n; j = j + 1) {
            t[i * n + j] = i * 10 + j;
          }
        }
        int sum = 0;
        for (int i = 0; i < n; i = i + 1) {
          int rowsum = 0;
          for (int j = 0; j < n; j = j + 1) {
            rowsum = rowsum + t[i * n + j];
          }
          sum = sum + rowsum * (i + 1);
        }
        return sum;
      }
    )"},
    {"live_through_loop", R"(
      int main() {
        int keep1 = 111; int keep2 = 222; int keep3 = 333; int keep4 = 444;
        int acc = 0;
        int i = 0;
        while (i < 10) {
          int t1 = i * 2; int t2 = i * 3; int t3 = i * 5; int t4 = i * 7;
          acc = acc + t1 * t2 + t3 * t4;
          i = i + 1;
        }
        return acc + keep1 + keep2 * 2 + keep3 * 3 + keep4 * 4;
      }
    )"},
    {"calls_and_recursion", R"(
      int ack(int m, int n) {
        if (m == 0) { return n + 1; }
        if (n == 0) { return ack(m - 1, 1); }
        return ack(m - 1, ack(m, n - 1));
      }
      int scale(int x, int k) { return x * k + 1; }
      int main() {
        return ack(2, 3) * 1000 + scale(ack(1, 1), 7);
      }
    )"},
    {"floats_mixed", R"(
      float acc;
      int main() {
        float x = 1.5; float y = 2.25;
        acc = 0.0;
        for (int i = 0; i < 8; i = i + 1) {
          acc = acc + x * i - y / (i + 1);
          x = x + 0.5;
        }
        return acc * 10.0;
      }
    )"},
    {"global_traffic", R"(
      int ga; int gb; int gc;
      int bump(int v) { gc = gc + v; return gc; }
      int main() {
        ga = 5; gb = 7;
        int s = 0;
        for (int i = 0; i < 6; i = i + 1) {
          s = s + bump(ga) - bump(gb) + i;
        }
        return s + ga * gb + gc;
      }
    )"},
    {"early_returns", R"(
      int classify(int v) {
        if (v < 0) { return 0 - 1; }
        if (v == 0) { return 0; }
        if (v < 10) { return 1; }
        return 2;
      }
      int main() {
        int s = 0;
        for (int i = 0 - 5; i < 15; i = i + 1) {
          s = s * 3 + classify(i);
        }
        return s;
      }
    )"},
};

class AllocatorE2E
    : public ::testing::TestWithParam<std::tuple<int, unsigned, int>> {};

const char *allocatorName(int A) { return A == 0 ? "gra" : "rap"; }

TEST_P(AllocatorE2E, MatchesReference) {
  auto [AllocIdx, K, ProgIdx] = GetParam();
  const ProgramCase &PC = Programs[ProgIdx];

  CompileOptions RefOpts; // unallocated reference
  RunResult Ref = compileAndRun(PC.Source, RefOpts);
  ASSERT_TRUE(Ref.Ok) << PC.Name << ": " << Ref.Error;

  CompileOptions Opts;
  Opts.Allocator = AllocIdx == 0 ? AllocatorKind::Gra : AllocatorKind::Rap;
  Opts.Alloc.K = K;
  RunResult Got = compileAndRun(PC.Source, Opts);
  ASSERT_TRUE(Got.Ok) << PC.Name << " with " << allocatorName(AllocIdx)
                      << " k=" << K << ": " << Got.Error;
  EXPECT_EQ(Got.ReturnValue.asInt(), Ref.ReturnValue.asInt())
      << PC.Name << " with " << allocatorName(AllocIdx) << " k=" << K;
}

std::string
caseName(const ::testing::TestParamInfo<AllocatorE2E::ParamType> &Info) {
  int A = std::get<0>(Info.param);
  unsigned K = std::get<1>(Info.param);
  int P = std::get<2>(Info.param);
  return std::string(allocatorName(A)) + "_k" + std::to_string(K) + "_" +
         Programs[P].Name;
}

INSTANTIATE_TEST_SUITE_P(
    AllPrograms, AllocatorE2E,
    ::testing::Combine(::testing::Values(0, 1),
                       ::testing::Values(3u, 5u, 7u, 9u),
                       ::testing::Range(0,
                                        static_cast<int>(std::size(Programs)))),
    caseName);

} // namespace
