//===- tests/checked_mode_test.cpp - Verified allocation over Table 1 -------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checked-mode acceptance run: every Table 1 routine, under both
/// allocators at every paper register-set size, with VerifyAssignments
/// cross-checking each coloring against the independent AssignmentVerifier
/// before the physical rewrite. Fallback is enabled — exactly so this test
/// can assert it never engages: zero fallbacks means every primary
/// allocation was verified sound, and the checksum check confirms the
/// rewritten code still computes the reference result.
///
//===----------------------------------------------------------------------===//

#include "benchprogs/BenchPrograms.h"
#include "driver/Pipeline.h"

#include "gtest/gtest.h"

#include <cctype>
#include <string>

using namespace rap;

namespace {

class CheckedMode : public ::testing::TestWithParam<unsigned> {};

TEST_P(CheckedMode, VerifiesCleanlyAtAllSizes) {
  const BenchProgram &P = benchPrograms()[GetParam()];
  std::string Source = P.Source;

  CompileOptions RefOpts; // unallocated reference
  RunResult Ref = compileAndRun(Source, RefOpts);
  ASSERT_TRUE(Ref.Ok) << P.Name << ": " << Ref.Error;
  int64_t Want = Ref.ReturnValue.asInt();

  for (AllocatorKind Kind : {AllocatorKind::Gra, AllocatorKind::Rap}) {
    for (unsigned K : {3u, 5u, 7u, 9u}) {
      CompileOptions Opts;
      Opts.Allocator = Kind;
      Opts.Alloc.K = K;
      Opts.Alloc.VerifyAssignments = true;
      Opts.Alloc.FallbackOnError = true;
      CompileResult CR = compileMiniC(Source, Opts);
      const char *Name = Kind == AllocatorKind::Gra ? "gra" : "rap";
      ASSERT_TRUE(CR.ok()) << P.Name << " " << Name << " k=" << K << ": "
                           << CR.Errors;
      EXPECT_FALSE(CR.degraded())
          << P.Name << " " << Name << " k=" << K
          << ": checked-mode run must not need the fallback:\n"
          << CR.Errors;
      Interpreter Interp(*CR.Prog);
      RunResult Got = Interp.run();
      ASSERT_TRUE(Got.Ok) << P.Name << " " << Name << " k=" << K << ": "
                          << Got.Error;
      EXPECT_EQ(Got.ReturnValue.asInt(), Want)
          << P.Name << " " << Name << " k=" << K;
    }
  }
}

std::string checkedModeName(const ::testing::TestParamInfo<unsigned> &Info) {
  std::string Name = benchPrograms()[Info.param].Name;
  for (char &C : Name)
    if (!std::isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return Name;
}

INSTANTIATE_TEST_SUITE_P(
    Table1, CheckedMode,
    ::testing::Range(0u, static_cast<unsigned>(benchPrograms().size())),
    checkedModeName);

} // namespace
