//===- tests/linearize_regiontree_test.cpp - Tree + emission -----------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ir/Linearize.h"

#include "gtest/gtest.h"

using namespace rap;
using rap::test::compile;

namespace {

TEST(RegionTree, PerStatementWrapsEachStatement) {
  auto Prog = compile(R"(
    int main() {
      int a = 1;
      int b = 2;
      return a + b;
    }
  )", RegionGranularity::PerStatement);
  ASSERT_NE(Prog, nullptr);
  const PdgNode *Root = Prog->function(0)->root();
  // Each of the three statements gets its own region child (pdgcc style).
  ASSERT_EQ(Root->Children.size(), 3u);
  for (const PdgNode *C : Root->Children) {
    EXPECT_TRUE(C->isRegion());
    ASSERT_EQ(C->Children.size(), 1u);
    EXPECT_TRUE(C->Children[0]->isStatement());
  }
}

TEST(RegionTree, MergedAttachesStatementsDirectly) {
  auto Prog = compile(R"(
    int main() {
      int a = 1;
      int b = 2;
      return a + b;
    }
  )", RegionGranularity::Merged);
  ASSERT_NE(Prog, nullptr);
  const PdgNode *Root = Prog->function(0)->root();
  ASSERT_EQ(Root->Children.size(), 3u);
  for (const PdgNode *C : Root->Children)
    EXPECT_TRUE(C->isStatement());
}

TEST(RegionTree, Figure1ShapeForWhileWithIfElse) {
  // The paper's Figure 1: entry region R1 holds the init statement and the
  // loop region R2; the loop predicate P1 controls the body R3; the body
  // holds a statement, predicate P2 with arms R4/R5, and a statement.
  auto Prog = compile(R"(
    int main() {
      int i = 1;
      while (i < 10) {
        int j = i + 1;
        if (j == 7) { j = j + 2; } else { j = j - 1; }
        i = i + j;
      }
      return i;
    }
  )", RegionGranularity::Merged);
  ASSERT_NE(Prog, nullptr);
  const PdgNode *R1 = Prog->function(0)->root();
  ASSERT_EQ(R1->Children.size(), 3u); // init, loop, return
  const PdgNode *R2 = R1->Children[1];
  ASSERT_TRUE(R2->isRegion());
  EXPECT_TRUE(R2->IsLoop);
  ASSERT_EQ(R2->Children.size(), 1u);
  const PdgNode *P1 = R2->Children[0];
  ASSERT_TRUE(P1->isPredicate());
  const PdgNode *R3 = P1->TrueRegion;
  ASSERT_NE(R3, nullptr);
  ASSERT_EQ(R3->Children.size(), 3u); // j=..., if, i=...
  const PdgNode *P2 = R3->Children[1];
  ASSERT_TRUE(P2->isPredicate());
  EXPECT_NE(P2->TrueRegion, nullptr);
  EXPECT_NE(P2->FalseRegion, nullptr);

  // parentCode of the body contains only the statement instructions (the
  // if's condition belongs to P2 which is also at this level).
  std::vector<Instr *> PC = R3->parentCode();
  EXPECT_FALSE(PC.empty());
  // subregions of the body are exactly the two branch arms.
  std::vector<PdgNode *> Subs = R3->subregions();
  ASSERT_EQ(Subs.size(), 2u);
  EXPECT_EQ(Subs[0], P2->TrueRegion);
  EXPECT_EQ(Subs[1], P2->FalseRegion);
}

TEST(Linearize, SubtreeRangesAreContiguousAndNested) {
  auto Prog = compile(R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 3; i = i + 1) {
        if (i > 1) { s = s + i; }
      }
      return s;
    }
  )");
  ASSERT_NE(Prog, nullptr);
  IlocFunction *F = Prog->function(0);
  LinearCode Code = linearize(*F);
  unsigned N = static_cast<unsigned>(Code.Instrs.size());
  F->root()->forEachNode([&](const PdgNode *Node) {
    EXPECT_LE(Node->LinBegin, Node->LinEnd);
    EXPECT_LE(Node->LinEnd, N);
    if (Node->Parent && Node->Parent->isRegion()) {
      EXPECT_GE(Node->LinBegin, Node->Parent->LinBegin);
      EXPECT_LE(Node->LinEnd, Node->Parent->LinEnd);
    }
  });
  EXPECT_EQ(F->root()->LinBegin, 0u);
  EXPECT_EQ(F->root()->LinEnd, N);
}

TEST(Linearize, LinPosMatchesStreamIndex) {
  auto Prog = compile("int main() { int a = 2; return a * a; }");
  ASSERT_NE(Prog, nullptr);
  LinearCode Code = linearize(*Prog->function(0));
  for (unsigned P = 0; P != Code.Instrs.size(); ++P)
    EXPECT_EQ(Code.Instrs[P]->LinPos, P);
}

TEST(Linearize, LoopEmitsCondBranchBody) {
  auto Prog = compile(R"(
    int main() {
      int i = 0;
      while (i < 2) { i = i + 1; }
      return i;
    }
  )");
  ASSERT_NE(Prog, nullptr);
  LinearCode Code = linearize(*Prog->function(0));
  // Find the cbr; the instruction stream must contain a jmp back to a label
  // at or before the cbr (the loop head).
  int CbrPos = -1, JmpPos = -1;
  for (unsigned P = 0; P != Code.Instrs.size(); ++P) {
    if (Code.Instrs[P]->Op == Opcode::Cbr)
      CbrPos = static_cast<int>(P);
    if (Code.Instrs[P]->Op == Opcode::Jmp)
      JmpPos = static_cast<int>(P);
  }
  ASSERT_GE(CbrPos, 0);
  ASSERT_GT(JmpPos, CbrPos);
  const Instr *Jmp = Code.Instrs[JmpPos];
  EXPECT_LE(Code.LabelPos[Jmp->Label0], static_cast<unsigned>(CbrPos))
      << "back edge targets the loop head";
}

TEST(Linearize, IfWithoutElseFallsThrough) {
  auto Prog = compile(R"(
    int main() {
      int a = 1;
      if (a > 0) { a = 2; }
      return a;
    }
  )");
  ASSERT_NE(Prog, nullptr);
  LinearCode Code = linearize(*Prog->function(0));
  for (const Instr *I : Code.Instrs)
    if (I->Op == Opcode::Cbr) {
      // The false label lands after the then-arm, which precedes return.
      EXPECT_GT(Code.LabelPos[I->Label1], Code.LabelPos[I->Label0]);
    }
}

TEST(Linearize, ReLinearizationIsIdempotent) {
  auto Prog = compile(R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 4; i = i + 1) { s = s + i; }
      return s;
    }
  )");
  ASSERT_NE(Prog, nullptr);
  LinearCode A = linearize(*Prog->function(0));
  LinearCode B = linearize(*Prog->function(0));
  ASSERT_EQ(A.Instrs.size(), B.Instrs.size());
  for (unsigned P = 0; P != A.Instrs.size(); ++P)
    EXPECT_EQ(A.Instrs[P], B.Instrs[P]);
  EXPECT_EQ(A.LabelPos, B.LabelPos);
}

TEST(RegionTree, ForEachInstrVisitsEverything) {
  auto Prog = compile(R"(
    int main() {
      int s = 0;
      if (s == 0) { s = 1; } else { s = 2; }
      while (s < 5) { s = s + 1; }
      return s;
    }
  )");
  ASSERT_NE(Prog, nullptr);
  IlocFunction *F = Prog->function(0);
  LinearCode Code = linearize(*F);
  unsigned Count = 0;
  F->root()->forEachInstr([&](Instr *) { ++Count; });
  EXPECT_EQ(Count, Code.Instrs.size());
}

} // namespace
