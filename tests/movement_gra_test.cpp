//===- tests/movement_gra_test.cpp - Phase 2 movement and GRA details ---------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "driver/Pipeline.h"
#include "interp/Interpreter.h"
#include "regalloc/Allocator.h"

#include "gtest/gtest.h"

using namespace rap;
using rap::test::compile;

namespace {

/// High register pressure around a loop that references a value spilled
/// outside it: the canonical spill-code-movement scenario (paper §3.2).
const char *HoistSource = R"(
  int out;
  int main() {
    int k1 = 11; int k2 = 22; int k3 = 33; int k4 = 44; int k5 = 55;
    int acc = 0;
    for (int i = 0; i < 50; i = i + 1) {
      acc = acc + k1;         /* k1 is hot inside the loop */
    }
    out = acc + k1 + k2 + k3 + k4 + k5;
    return out;
  }
)";

TEST(SpillMovement, LoopTrafficLeavesTheLoop) {
  // Run RAP with and without phase 2 at a small k; movement must not
  // increase executed spill operations, and the result must be identical.
  int64_t Want = 0;
  {
    CompileOptions Ref;
    RunResult R = compileAndRun(HoistSource, Ref);
    ASSERT_TRUE(R.Ok);
    Want = R.ReturnValue.asInt();
  }
  uint64_t SpillOps[2];
  for (int WithMove = 0; WithMove <= 1; ++WithMove) {
    CompileOptions O;
    O.Allocator = AllocatorKind::Rap;
    O.Alloc.K = 3;
    O.Alloc.SpillMovement = WithMove;
    O.Alloc.Peephole = false;
    O.Alloc.GlobalCleanup = false;
    RunResult R = compileAndRun(HoistSource, O);
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.ReturnValue.asInt(), Want);
    SpillOps[WithMove] = R.Stats.SpillLoads + R.Stats.SpillStores;
  }
  EXPECT_LE(SpillOps[1], SpillOps[0])
      << "movement never adds executed spill traffic";
}

TEST(SpillMovement, AllBenchConfigsStayCorrectWithoutLaterPhases) {
  // Phase 2 in isolation (no cleanup phases to mask bugs).
  for (const char *Src : {HoistSource}) {
    CompileOptions Ref;
    RunResult RefRun = compileAndRun(Src, Ref);
    ASSERT_TRUE(RefRun.Ok);
    for (unsigned K : {3u, 4u, 5u}) {
      CompileOptions O;
      O.Allocator = AllocatorKind::Rap;
      O.Alloc.K = K;
      O.Alloc.Peephole = false;
      O.Alloc.GlobalCleanup = false;
      RunResult R = compileAndRun(Src, O);
      ASSERT_TRUE(R.Ok) << R.Error;
      EXPECT_EQ(R.ReturnValue.asInt(), RefRun.ReturnValue.asInt())
          << "k=" << K;
    }
  }
}

//===----------------------------------------------------------------------===//
// GRA specifics
//===----------------------------------------------------------------------===//

TEST(Gra, NoSpillsWhenRegistersSuffice) {
  auto Prog = compile("int main() { int a = 1; int b = 2; return a + b; }");
  ASSERT_NE(Prog, nullptr);
  AllocOptions AO;
  AO.K = 8;
  AllocStats S = allocateGra(*Prog->function(0), AO);
  EXPECT_EQ(S.SpilledVRegs, 0u);
  EXPECT_TRUE(Prog->function(0)->isAllocated());
  EXPECT_EQ(Prog->function(0)->numPhysRegs(), 8u);
}

TEST(Gra, SpillsUnderPressureAndStaysCorrect) {
  const char *Src = R"(
    int main() {
      int a = 1; int b = 2; int c = 3; int d = 4; int e = 5; int f = 6;
      int x = a*b + c*d + e*f;
      int y = a + b + c + d + e + f;
      return x * 1000 + y;
    }
  )";
  CompileOptions Ref;
  RunResult RefRun = compileAndRun(Src, Ref);
  ASSERT_TRUE(RefRun.Ok);

  CompileOptions O;
  O.Allocator = AllocatorKind::Gra;
  O.Alloc.K = 3;
  CompileResult CR = compileMiniC(Src, O);
  EXPECT_GT(CR.Alloc.SpilledVRegs, 0u);
  RunResult R = Interpreter(*CR.Prog).run();
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.ReturnValue.asInt(), RefRun.ReturnValue.asInt());
  EXPECT_GT(R.Stats.SpillLoads, 0u);
}

TEST(Gra, ParamValueParkedWhenSpilled) {
  // Three params plus pressure at k=3 forces a parameter spill; the value
  // must survive (the park store at entry).
  const char *Src = R"(
    int f(int a, int b, int c) {
      int t1 = a * b; int t2 = b * c; int t3 = a * c;
      return t1 + t2 + t3 + a + b + c;
    }
    int main() { return f(3, 5, 7); }
  )";
  CompileOptions Ref;
  RunResult RefRun = compileAndRun(Src, Ref);
  ASSERT_TRUE(RefRun.Ok);
  CompileOptions O;
  O.Allocator = AllocatorKind::Gra;
  O.Alloc.K = 3;
  RunResult R = compileAndRun(Src, O);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.ReturnValue.asInt(), RefRun.ReturnValue.asInt());
}

TEST(Gra, TrivialCopiesDeletedAfterAssignment) {
  // x = y with x and y allocatable to one register: the copy disappears
  // (the paper's copy-statement accounting).
  const char *Src = R"(
    int main() {
      int y = 41;
      int x = y;
      return x + 1;
    }
  )";
  CompileOptions O;
  O.Allocator = AllocatorKind::Gra;
  O.Alloc.K = 4;
  CompileResult CR = compileMiniC(Src, O);
  ASSERT_TRUE(CR.ok());
  RunResult R = Interpreter(*CR.Prog).run();
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.ReturnValue.asInt(), 42);
  EXPECT_GT(CR.Alloc.CopiesDeleted, 0u)
      << "first-fit aligns copy operands here";
}

TEST(Gra, AllocationIsDeterministic) {
  const char *Src = R"(
    int main() {
      int a = 1; int b = 2; int c = 3; int d = 4;
      return a*b + c*d + a + d;
    }
  )";
  CompileOptions O;
  O.Allocator = AllocatorKind::Gra;
  O.Alloc.K = 3;
  CompileResult A = compileMiniC(Src, O);
  CompileResult B = compileMiniC(Src, O);
  EXPECT_EQ(A.Prog->function(0)->str(), B.Prog->function(0)->str());
}

TEST(Rap, AllocationIsDeterministic) {
  const char *Src = R"(
    int main() {
      int a = 1; int b = 2; int c = 3; int d = 4;
      int s = 0;
      for (int i = 0; i < 3; i = i + 1) { s = s + a*b + c*d; }
      return s;
    }
  )";
  CompileOptions O;
  O.Allocator = AllocatorKind::Rap;
  O.Alloc.K = 3;
  CompileResult A = compileMiniC(Src, O);
  CompileResult B = compileMiniC(Src, O);
  EXPECT_EQ(A.Prog->function(0)->str(), B.Prog->function(0)->str());
}

TEST(Allocator, KindFromString) {
  EXPECT_EQ(allocatorKindFromString("gra"), AllocatorKind::Gra);
  EXPECT_EQ(allocatorKindFromString("rap"), AllocatorKind::Rap);
  EXPECT_EQ(allocatorKindFromString("none"), AllocatorKind::None);
  EXPECT_EQ(allocatorKindFromString("bogus"), AllocatorKind::None);
}

TEST(Allocator, ProgramLevelAllocatesEveryFunction) {
  auto Prog = compile(R"(
    int h(int x) { return x * 2; }
    int main() { return h(21); }
  )");
  ASSERT_NE(Prog, nullptr);
  AllocOptions AO;
  AO.K = 4;
  allocateProgram(*Prog, AllocatorKind::Rap, AO);
  for (const auto &F : Prog->functions())
    EXPECT_TRUE(F->isAllocated()) << F->name();
  RunResult R = Interpreter(*Prog).run();
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.ReturnValue.asInt(), 42);
}

} // namespace
