//===- tests/server_robustness_test.cpp - crash-only serving ----------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The crash-only serving layer (DESIGN.md §13), bottom-up:
///
///  * Deadline / CancelToken — expiry, sticky cancel, parent chaining, and
///    the deadline-wins reason() contract;
///  * checkAllocBudget + the allocators — a stopped token aborts allocation
///    with the matching AllocError kind at the next round boundary;
///  * CompileService — deadline_ms answers deadline-exceeded, a drain
///    cancel answers cancelled, and aborted requests insert NOTHING into
///    the cache (the determinism contract under wall-clock races);
///  * BoundedQueue close/pop races and ShardPool submission racing the
///    barrier — deterministic interleavings built from cancel-token gates
///    and single-shard FIFO order, never sleeps;
///  * the ShardPool watchdog — a worker that ignores its token trips the
///    watchdog, degrades the shard, and the shard recovers on completion;
///  * Server — the NDJSON line cap, the new stats counters, and graceful
///    drain end-to-end over serveStdio (clean exit 0, degraded exit 3,
///    signal-flag admission stop) driven by the deterministic mid-request
///    shutdown chaos site rather than real signals.
///
//===----------------------------------------------------------------------===//

#include "server/Server.h"
#include "support/BoundedQueue.h"

#include "gtest/gtest.h"

#include <atomic>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace rap;
using namespace rap::server;

namespace {

/// Spin until \p Done returns true or ~5s pass. The gates these tests wait
/// on are set by running threads, so this terminates promptly; the bound
/// only exists so a regression fails instead of hanging CTest.
template <typename Fn> bool spinUntil(Fn &&Done) {
  auto End = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!Done()) {
    if (std::chrono::steady_clock::now() > End)
      return false;
    std::this_thread::yield();
  }
  return true;
}

/// A module heavy enough that cold allocation takes well over the tight
/// deadlines used below (many simultaneously-live values, nested control
/// flow, repeated \p N times as independent functions).
std::string heavyModule(unsigned N) {
  std::string S;
  for (unsigned I = 0; I != N; ++I) {
    char Buf[768];
    std::snprintf(Buf, sizeof(Buf),
                  "int hot%u(int n) {\n"
                  "  int a = n + %u; int b = n * 3; int c = a - b;\n"
                  "  int d = a * b %% 9973; int e = c + d; int f = e * 2;\n"
                  "  for (int i = 0; i < n; i = i + 1) {\n"
                  "    int t = a * i + b;\n"
                  "    if (t %% 2 == 0) { a = a + c * i; b = b + e; }\n"
                  "    else { d = d + f - t; e = e + a %% 367; }\n"
                  "    c = c + (a + b) %% 275; f = f + (c - d) * 3;\n"
                  "  }\n"
                  "  return a + b + c + d + e + f;\n"
                  "}\n",
                  I, I);
    S += Buf;
  }
  S += "int main() { int acc = 0;\n";
  for (unsigned I = 0; I != N; ++I)
    S += "  acc = acc + hot" + std::to_string(I) + "(7);\n";
  S += "  return acc; }\n";
  return S;
}

//===----------------------------------------------------------------------===//
// Deadline / CancelToken.
//===----------------------------------------------------------------------===//

TEST(Deadline, UnarmedNeverExpires) {
  Deadline D;
  EXPECT_FALSE(D.armed());
  EXPECT_FALSE(D.expired());
  CancelToken T;
  EXPECT_FALSE(T.stopRequested());
  EXPECT_STREQ(T.reason(), "");
}

TEST(Deadline, PastDeadlineExpires) {
  Deadline D = Deadline::at(Deadline::Clock::now() -
                            std::chrono::milliseconds(1));
  EXPECT_TRUE(D.armed());
  EXPECT_TRUE(D.expired());
  CancelToken T(D);
  EXPECT_TRUE(T.stopRequested());
  EXPECT_STREQ(T.reason(), "deadline-exceeded");
}

TEST(Deadline, CancelIsSticky) {
  CancelToken T;
  T.cancel();
  EXPECT_TRUE(T.cancelled());
  EXPECT_TRUE(T.stopRequested());
  EXPECT_STREQ(T.reason(), "cancelled");
}

TEST(Deadline, ParentCancelPropagates) {
  CancelToken Parent;
  CancelToken Child(Deadline(), &Parent);
  EXPECT_FALSE(Child.stopRequested());
  Parent.cancel();
  EXPECT_TRUE(Child.cancelled());
  EXPECT_TRUE(Child.stopRequested());
}

TEST(Deadline, ExpiryWinsOverCancelInReason) {
  CancelToken T(Deadline::at(Deadline::Clock::now() -
                             std::chrono::milliseconds(1)));
  T.cancel();
  EXPECT_STREQ(T.reason(), "deadline-exceeded");
}

//===----------------------------------------------------------------------===//
// The allocator round-boundary guard.
//===----------------------------------------------------------------------===//

AllocErrorKind allocUnderToken(const CancelToken &Token) {
  CompileOptions CO;
  CO.Allocator = AllocatorKind::None;
  CompileResult CR = compileMiniC(heavyModule(1), CO);
  EXPECT_TRUE(CR.ok()) << CR.Errors;
  AllocOptions Options;
  Options.K = 3;
  Options.Cancel = &Token;
  try {
    allocateRap(*CR.Prog->functions()[0], Options);
  } catch (const AllocError &E) {
    return E.kind();
  }
  return AllocErrorKind::Internal;
}

TEST(AllocBudget, CancelledTokenAbortsAllocation) {
  CancelToken T;
  T.cancel();
  EXPECT_EQ(allocUnderToken(T), AllocErrorKind::Cancelled);
}

TEST(AllocBudget, ExpiredDeadlineAbortsAllocation) {
  CancelToken T(Deadline::at(Deadline::Clock::now() -
                             std::chrono::milliseconds(1)));
  EXPECT_EQ(allocUnderToken(T), AllocErrorKind::DeadlineExceeded);
}

//===----------------------------------------------------------------------===//
// CompileService deadlines + cache hygiene.
//===----------------------------------------------------------------------===//

TEST(ServiceDeadline, TightDeadlineAnswersDeadlineExceeded) {
  ServiceConfig Config;
  Config.Shards = 2;
  CompileService Service(Config);
  RequestOptions Opts;
  Opts.K = 3;
  Opts.DeadlineMs = 1;
  ServiceResult Res = Service.compile(heavyModule(24), Opts);
  EXPECT_FALSE(Res.Ok);
  EXPECT_EQ(Res.Status, ServiceStatus::DeadlineExceeded);
  EXPECT_EQ(std::string(serviceStatusName(Res.Status)), "deadline-exceeded");
  EXPECT_EQ(Service.counters().DeadlineExceeded, 1u);
}

TEST(ServiceDeadline, AbortedRequestInsertsNothingIntoTheCache) {
  ServiceConfig Config;
  Config.Shards = 2;
  CompileService Service(Config);
  std::string Source = heavyModule(24);
  RequestOptions Tight;
  Tight.K = 3;
  Tight.DeadlineMs = 1;
  ServiceResult Aborted = Service.compile(Source, Tight);
  ASSERT_FALSE(Aborted.Ok);

  // The follow-up compile of the same source must see a completely cold
  // cache: an aborted request may have *looked up* entries, never inserted
  // them, so deterministic replays are unaffected by wall-clock aborts.
  RequestOptions Free;
  Free.K = 3;
  ServiceResult Cold = Service.compile(Source, Free);
  ASSERT_TRUE(Cold.Ok) << Cold.Errors;
  EXPECT_EQ(Cold.CacheHits, 0u);

  // And the non-aborted compile DID insert: a third pass is all hits.
  ServiceResult Warm = Service.compile(Source, Free);
  ASSERT_TRUE(Warm.Ok) << Warm.Errors;
  EXPECT_EQ(Warm.CacheMisses, 0u);
  EXPECT_EQ(Warm.OutputHash, Cold.OutputHash);
}

TEST(ServiceDeadline, DrainTokenCancelsRequests) {
  CancelToken Drain;
  ServiceConfig Config;
  Config.Shards = 1;
  Config.StopToken = &Drain;
  CompileService Service(Config);
  Drain.cancel();
  RequestOptions Opts;
  Opts.K = 3;
  ServiceResult Res = Service.compile(heavyModule(2), Opts);
  EXPECT_FALSE(Res.Ok);
  EXPECT_EQ(Res.Status, ServiceStatus::Cancelled);
  EXPECT_EQ(Service.counters().Cancelled, 1u);
}

//===----------------------------------------------------------------------===//
// BoundedQueue close/pop races.
//===----------------------------------------------------------------------===//

TEST(BoundedQueueRaces, CloseWakesAllConcurrentPoppers) {
  BoundedQueue<int> Q(64);
  constexpr int Items = 48;
  constexpr int Poppers = 4;
  std::atomic<int> Popped{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T != Poppers; ++T)
    Threads.emplace_back([&] {
      int V;
      while (Q.pop(V))
        Popped.fetch_add(1, std::memory_order_relaxed);
    });
  for (int I = 0; I != Items; ++I)
    ASSERT_TRUE(Q.push(I));
  Q.close(); // racing the poppers: they must drain all 48, then stop
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Popped.load(), Items);
}

TEST(BoundedQueueRaces, CloseAfterFirstPopViaTokenGate) {
  // Deterministic interleaving without sleeps: the consumer signals through
  // a cancel token after its first pop; close() is ordered strictly after
  // that pop and must wake the consumer's second, blocked pop with "done".
  BoundedQueue<int> Q(4);
  CancelToken GotFirst;
  std::atomic<int> Seen{0};
  ASSERT_TRUE(Q.push(7));
  std::thread Consumer([&] {
    int V;
    while (Q.pop(V)) {
      Seen.fetch_add(1, std::memory_order_relaxed);
      GotFirst.cancel();
    }
  });
  ASSERT_TRUE(spinUntil([&] { return GotFirst.cancelled(); }));
  Q.close();
  Consumer.join();
  EXPECT_EQ(Seen.load(), 1);
}

TEST(BoundedQueueRaces, ProducersRacingClose) {
  BoundedQueue<int> Q(8);
  std::atomic<int> Accepted{0};
  std::vector<std::thread> Producers;
  for (int T = 0; T != 4; ++T)
    Producers.emplace_back([&] {
      for (int I = 0; I != 64; ++I)
        if (Q.tryPush(I))
          Accepted.fetch_add(1, std::memory_order_relaxed);
    });
  int Drained = 0;
  int V;
  // Consumer in this thread: drain while producers race, then close; every
  // accepted push must be popped exactly once, rejected pushes never.
  for (std::thread &T : Producers)
    T.join();
  Q.close();
  while (Q.pop(V))
    ++Drained;
  EXPECT_EQ(Drained, Accepted.load());
}

//===----------------------------------------------------------------------===//
// ShardPool: submission racing the barrier, skip-on-stop, the watchdog.
//===----------------------------------------------------------------------===//

TEST(ShardPoolRaces, SubmissionRacesCompletionSafely) {
  // expect() everything up front, then let early tasks complete (and call
  // done()) while later submits are still in flight — the barrier must
  // neither release early nor lose a count.
  ShardPool Pool(4, WatchdogConfig{0, 0});
  TaskGroup Group;
  constexpr unsigned N = 200;
  Group.expect(N);
  std::atomic<unsigned> Ran{0};
  for (unsigned I = 0; I != N; ++I)
    Pool.submit(I, [&] { Ran.fetch_add(1, std::memory_order_relaxed); },
                &Group);
  Group.wait();
  EXPECT_EQ(Ran.load(), N);
  EXPECT_EQ(Pool.tasksRun(), N);
}

TEST(ShardPoolRaces, StoppedTokenSkipsQueuedTasksButReleasesBarrier) {
  ShardPool Pool(2, WatchdogConfig{0, 0});
  CancelToken Stopped;
  Stopped.cancel();
  TaskGroup Group;
  Group.expect(8);
  std::atomic<unsigned> Ran{0};
  for (unsigned I = 0; I != 8; ++I)
    Pool.submit(I, [&] { Ran.fetch_add(1, std::memory_order_relaxed); },
                &Group, &Stopped);
  Group.wait(); // must release even though nothing ran
  EXPECT_EQ(Ran.load(), 0u);
  EXPECT_EQ(Pool.tasksSkipped(), 8u);
  EXPECT_EQ(Pool.tasksRun(), 0u);
}

TEST(ShardPoolRaces, MidstreamCancelSkipsTheTail) {
  // One shard = FIFO order: the first task cancels the token the remaining
  // seven were submitted with, so the tail is deterministically skipped.
  ShardPool Pool(1, WatchdogConfig{0, 0});
  CancelToken Token;
  TaskGroup Group;
  Group.expect(8);
  // Hold the worker at the gate until every task is queued, so the cancel
  // is ordered before any of the tail dequeues.
  CancelToken AllQueued;
  Pool.submit(0, [&] {
    while (!AllQueued.cancelled())
      std::this_thread::yield();
    Token.cancel();
  }, &Group, nullptr);
  std::atomic<unsigned> Ran{0};
  for (unsigned I = 0; I != 7; ++I)
    Pool.submit(0, [&] { Ran.fetch_add(1, std::memory_order_relaxed); },
                &Group, &Token);
  AllQueued.cancel();
  Group.wait();
  EXPECT_EQ(Ran.load(), 0u);
  EXPECT_EQ(Pool.tasksSkipped(), 7u);
}

TEST(ShardPoolWatchdog, TripsOnTokenIgnoringTaskAndRecovers) {
  WatchdogConfig Watchdog;
  Watchdog.Factor = 1;
  Watchdog.PollMs = 1;
  ShardPool Pool(1, Watchdog);
  // The task's own deadline is short but safely past worker pickup (a
  // pre-expired token would be skipped, not run); the task then ignores it
  // (the failure mode the watchdog exists for) until we release it.
  CancelToken Wedged(Deadline::afterMs(20));
  CancelToken Release;
  TaskGroup Group;
  Group.expect(1);
  Pool.submit(0, [&] {
    while (!Release.cancelled())
      std::this_thread::yield();
  }, &Group, &Wedged);
  EXPECT_TRUE(spinUntil([&] { return Pool.watchdogTrips() >= 1; }));
  EXPECT_EQ(Pool.shardsDegraded(), 1u);
  Release.cancel();
  Group.wait();
  // Degradation is sticky only while the wedged task runs.
  EXPECT_TRUE(spinUntil([&] { return Pool.shardsDegraded() == 0; }));
  EXPECT_GE(Pool.watchdogTrips(), 1u);
}

//===----------------------------------------------------------------------===//
// Server: line cap, stats counters, deadline over the protocol, drain.
//===----------------------------------------------------------------------===//

TEST(ServerRobustness, OversizedLineAnswersBadRequest) {
  ServerConfig Config;
  Config.Service.Shards = 1;
  Config.MaxLineBytes = 128;
  Server S(Config);
  std::string Long = "{\"op\":\"ping\",\"id\":1,\"pad\":\"" +
                     std::string(256, 'x') + "\"}";
  std::string Out = S.handleLine(Long);
  EXPECT_NE(Out.find("\"ok\":false"), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"kind\":\"bad-request\""), std::string::npos) << Out;
  EXPECT_NE(Out.find("max-line-bytes"), std::string::npos) << Out;
  // A line at the cap still serves.
  std::string Ping = "{\"op\":\"ping\",\"id\":2}";
  EXPECT_NE(S.handleLine(Ping).find("pong"), std::string::npos);
  EXPECT_EQ(S.rejectedRequests(), 1u);
}

TEST(ServerRobustness, StatsCarryCrashOnlyCounters) {
  ServerConfig Config;
  Config.Service.Shards = 1;
  Config.DrainMs = 1234;
  Server S(Config);
  std::string Out = S.handleLine("{\"op\":\"stats\",\"id\":9}");
  for (const char *Key :
       {"\"deadline_exceeded\"", "\"cancelled\"", "\"watchdog_trips\"",
        "\"shards_degraded\"", "\"chaos_injected\"", "\"drain_ms\":1234"})
    EXPECT_NE(Out.find(Key), std::string::npos) << Key << " missing: " << Out;
}

TEST(ServerRobustness, DeadlineExceededOverTheProtocol) {
  ServerConfig Config;
  Config.Service.Shards = 2;
  Server S(Config);
  std::string Line =
      "{\"op\":\"compile\",\"id\":4,\"source\":" +
      json::Value(heavyModule(24)).str() +
      ",\"options\":{\"alloc\":\"rap\",\"k\":3,\"deadline_ms\":1}}";
  std::string Out = S.handleLine(Line);
  EXPECT_NE(Out.find("\"kind\":\"deadline-exceeded\""), std::string::npos)
      << Out;
  EXPECT_NE(Out.find("\"id\":4"), std::string::npos) << Out;
}

TEST(ServerRobustness, BadDeadlineIsRejected) {
  ServerConfig Config;
  Config.Service.Shards = 1;
  Server S(Config);
  std::string Out = S.handleLine(
      "{\"op\":\"compile\",\"id\":5,\"source\":\"int main(){return 0;}\","
      "\"options\":{\"deadline_ms\":0}}");
  EXPECT_NE(Out.find("\"kind\":\"bad-request\""), std::string::npos) << Out;
  EXPECT_NE(Out.find("deadline_ms"), std::string::npos) << Out;
}

TEST(ServerDrain, CleanDrainViaShutdownOpExitsZero) {
  ServerConfig Config;
  Config.Service.Shards = 1;
  Config.Hello = false;
  Server S(Config);
  std::istringstream In("{\"op\":\"ping\",\"id\":1}\n"
                        "{\"op\":\"shutdown\",\"id\":2}\n"
                        "{\"op\":\"ping\",\"id\":3}\n");
  std::ostringstream Out;
  EXPECT_EQ(S.serveStdio(In, Out), 0);
  std::string Text = Out.str();
  EXPECT_NE(Text.find("pong"), std::string::npos);
  EXPECT_NE(Text.find("shutting-down"), std::string::npos);
  // The third line was never admitted: drain stops admission.
  EXPECT_EQ(Text.find("\"id\":3"), std::string::npos) << Text;
  EXPECT_FALSE(S.drainDegraded());
}

TEST(ServerDrain, SignalFlagStopsAdmissionBeforeServing) {
  static volatile std::sig_atomic_t Flag = 0;
  Flag = 1;
  ServerConfig Config;
  Config.Service.Shards = 1;
  Config.Hello = false;
  Config.StopFlag = &Flag;
  Server S(Config);
  std::istringstream In("{\"op\":\"ping\",\"id\":1}\n");
  std::ostringstream Out;
  EXPECT_EQ(S.serveStdio(In, Out), 0);
  EXPECT_TRUE(Out.str().empty());
  Flag = 0;
}

TEST(ServerDrain, DrainDeadlineCancelsInflightAndExitsThree) {
  // Deterministic mid-request shutdown via the chaos site: the first
  // dispatch flips the stop flag (as if SIGTERM landed mid-compile), the
  // 25ms drain window passes while the big compile is still running, the
  // drain watcher cancels it, and the request answers "cancelled" — no
  // response lost, exit code 3.
  ServerConfig Config;
  Config.Service.Shards = 2;
  Config.Hello = false;
  Config.DrainMs = 25;
  Config.Service.Chaos = FaultPlan::fromString("shutdown:1");
  Server S(Config);
  std::istringstream In(
      "{\"op\":\"compile\",\"id\":1,\"source\":" +
      json::Value(heavyModule(48)).str() +
      ",\"options\":{\"alloc\":\"rap\",\"k\":3}}\n"
      "{\"op\":\"ping\",\"id\":2}\n");
  std::ostringstream Out;
  EXPECT_EQ(S.serveStdio(In, Out), 3);
  std::string Text = Out.str();
  EXPECT_NE(Text.find("\"id\":1"), std::string::npos) << Text;
  EXPECT_NE(Text.find("\"kind\":\"cancelled\""), std::string::npos) << Text;
  EXPECT_EQ(Text.find("\"id\":2"), std::string::npos) << Text;
  EXPECT_TRUE(S.drainDegraded());
  EXPECT_GE(S.service().counters().Cancelled, 1u);
}

} // namespace
