#!/usr/bin/env python3
"""Merge one harness's rap-bench-v1 output into the committed BENCH_alloc.json.

Usage: merge_bench_section.py BENCH_alloc.json SECTION new_section.json

Idempotent and tolerant by design (the bench scripts run in any order, on
fresh checkouts and on trees where only some harnesses have run):

  * a missing/empty/corrupt BENCH_alloc.json is treated as a fresh document,
  * a missing prior SECTION is simply created,
  * re-running with the same input replaces the section in place,
  * unrelated sections written by other harnesses are preserved verbatim.

SECTION may be "." to merge the new document's top-level keys (the primary
alloc_cost counters) instead of nesting under a named section — again
preserving any existing named sections.
"""
import json
import sys


def load_json(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError):
        return None


def main():
    if len(sys.argv) != 4:
        sys.stderr.write(__doc__)
        return 2
    target_path, section, new_path = sys.argv[1], sys.argv[2], sys.argv[3]

    new = load_json(new_path)
    if new is None:
        sys.stderr.write(f"merge_bench_section: cannot parse {new_path}\n")
        return 1
    if new.get("schema") != "rap-bench-v1" or not new.get("rows"):
        sys.stderr.write(
            f"merge_bench_section: {new_path} is not a rap-bench-v1 "
            "document with rows\n")
        return 1

    target = load_json(target_path)
    if not isinstance(target, dict):
        target = {}  # missing or corrupt prior artifact: start fresh

    if section == ".":
        # Top-level merge: replace the primary document's own keys, keep
        # every nested section some other harness contributed.
        preserved = {k: v for k, v in target.items()
                     if isinstance(v, dict) and v.get("schema") == "rap-bench-v1"}
        target = dict(new)
        target.update(preserved)
    else:
        target[section] = new

    with open(target_path, "w") as f:
        json.dump(target, f, indent=2)
        f.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
