#!/usr/bin/env bash
# Smoke-tests durable crash recovery (DESIGN.md §15) end to end and
# refreshes the committed server-recovery benchmark section:
#
#   1. runs bench/server_recovery: the real rapd under `rapd --supervise`
#      with a persistent --cache-dir, SIGKILLed repeatedly while the
#      retrying client streams compiles. Gates: every request answered
#      exactly once, post-recovery responses bit-identical to pre-crash
#      cold compiles, >= 80% warm-hit retention across the kills, recovery
#      telemetry populated, clean shutdown with supervisor exit 0;
#   2. asserts stale-socket handling: a dead socket file is silently
#      rebound, a *live* server's socket is refused with a `socket-in-use`
#      error and exit 1;
#   3. asserts fingerprint invalidation: a store written under one
#      fingerprint is wiped (never stale-hit) by a server opening it with
#      another;
#   4. merges the soak's rap-bench-v1 JSON into BENCH_alloc.json as the
#      "server_recovery" section.
#
# On failure the soak leaves its working directory (journal, snapshot,
# supervisor log) on disk and prints the path — CI uploads it as an
# artifact (RECOVERY_artifacts/).
#
# Usage: scripts/server_recovery_smoke.sh [build-dir]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"

cmake -S "$REPO_ROOT" -B "$BUILD_DIR" >/dev/null
cmake --build "$BUILD_DIR" --target rapd rapc server_recovery -j "$(nproc)"

RAPD="$BUILD_DIR/src/server/rapd"
RAPC="$BUILD_DIR/src/server/rapc"
WORK="${RECOVERY_WORK_DIR:-$REPO_ROOT/RECOVERY_artifacts}"
rm -rf "$WORK"
mkdir -p "$WORK"

# --- 1. kill -9 soak (leaves $WORK/soak on failure for artifact upload) ----
"$BUILD_DIR/bench/server_recovery" --rapd="$RAPD" --dir="$WORK/soak" \
  --sources=16 --kills=3 --burst=6 --json > "$WORK/recovery.json"
python3 - "$WORK/recovery.json" <<'PYEOF'
import json, sys
row = json.load(open(sys.argv[1]))["rows"][0]
assert row["responses"] == row["requests"], row
assert row["hash_mismatches"] == 0, row
assert row["warm_retention_pct"] >= 80.0, row
assert row["journal_frames_replayed"] > 0 and row["restarts"] >= row["kills"]
print(f"recovery soak OK: {row['requests']} requests exactly-once across "
      f"{row['kills']} kill -9s ({row['resends']} resends), "
      f"{row['warm_retention_pct']:.0f}% warm retention, "
      f"{row['journal_frames_replayed']} frames replayed")
PYEOF

# --- 2. stale-socket handling ----------------------------------------------
SOCK="$WORK/stale.sock"
# A dead socket file (no listener) must be silently unlinked and rebound.
python3 -c "import socket,sys; s=socket.socket(socket.AF_UNIX); s.bind(sys.argv[1]); s.close()" "$SOCK"
"$RAPD" --socket="$SOCK" --no-hello 2>"$WORK/stale.log" &
RAPD_PID=$!
for _ in $(seq 1 100); do
  "$RAPC" --socket="$SOCK" --timeout-ms=500 --retries=0 ping >/dev/null 2>&1 && break
  sleep 0.05
done
"$RAPC" --socket="$SOCK" ping >/dev/null
# A second rapd against the LIVE socket must refuse with socket-in-use, exit 1.
set +e
"$RAPD" --socket="$SOCK" --no-hello 2>"$WORK/inuse.log"
INUSE_EXIT=$?
set -e
[ "$INUSE_EXIT" -eq 1 ] || { echo "live-socket rebind exited $INUSE_EXIT, want 1"; exit 1; }
grep -q "socket-in-use" "$WORK/inuse.log" || { echo "no socket-in-use error:"; cat "$WORK/inuse.log"; exit 1; }
"$RAPC" --socket="$SOCK" shutdown >/dev/null
wait "$RAPD_PID"
echo "stale-socket OK: dead socket rebound, live socket refused (exit 1)"

# --- 3. fingerprint invalidation: changed build/options never stale-hit ----
python3 - "$RAPD" "$RAPC" "$WORK" <<'PYEOF'
import json, os, subprocess, sys

rapd, rapc, work = sys.argv[1], sys.argv[2], sys.argv[3]
cache = os.path.join(work, "fpcache")
src = "int main() { int a; a = 41; return a + 1; }\n"
req = json.dumps({"op": "compile", "id": 1, "source": src,
                  "options": {"alloc": "rap", "k": 3}}) + "\n"
req += json.dumps({"op": "stats", "id": 2}) + "\n"

def serve(extra_env):
    env = dict(os.environ, **extra_env)
    p = subprocess.run([rapd, f"--cache-dir={cache}", "--no-hello"],
                       input=req, capture_output=True, text=True,
                       timeout=300, env=env)
    assert p.returncode == 0, p.stderr
    lines = [json.loads(l) for l in p.stdout.splitlines() if l.strip()]
    return lines[0], lines[1]["stats"]["recovery"]

# Run 1 seeds the store; run 2 (same fingerprint) must warm-hit.
c1, r1 = serve({})
c2, r2 = serve({})
assert c2["cache_hits"] > 0 and c2["cache_misses"] == 0, c2
assert c2["output_hash"] == c1["output_hash"]
assert r2["journal_frames_replayed"] > 0, r2
# RAP_CACHE_FINGERPRINT overrides the build fingerprint (test hook): a
# mismatched store must be wiped — cold compile, an invalidation counted,
# nothing replayed.
c3, r3 = serve({"RAP_CACHE_FINGERPRINT": "12345"})
assert c3["cache_misses"] > 0 and c3["cache_hits"] == 0, c3
assert r3["journal_frames_replayed"] == 0, r3
assert r3["invalidations"] >= 1, r3
assert c3["output_hash"] == c1["output_hash"]
# And the re-fingerprinted store warm-hits on its own next run.
c4, r4 = serve({"RAP_CACHE_FINGERPRINT": "12345"})
assert c4["cache_hits"] > 0 and c4["cache_misses"] == 0, c4
print("fingerprint invalidation OK: mismatch wiped the store cold, "
      "never a stale hit")
PYEOF

# --- 4. merge the soak section into BENCH_alloc.json ------------------------
python3 "$REPO_ROOT/scripts/merge_bench_section.py" \
  "$REPO_ROOT/BENCH_alloc.json" server_recovery "$WORK/recovery.json"

rm -rf "$WORK"
echo "server recovery smoke OK; section merged into $REPO_ROOT/BENCH_alloc.json"
