#!/usr/bin/env bash
# Checked-mode smoke: every Table 1 routine under both allocators at
# k in {3,5,7,9} with --verify (independent assignment verification before
# the physical rewrite), asserting zero spill-everything fallbacks, then a
# fault-injection end-to-end check that the rapcc degradation path works
# (exit code 3, correct result).
#
# Usage: scripts/checked_smoke.sh [build-dir]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"

cmake -S "$REPO_ROOT" -B "$BUILD_DIR" >/dev/null
cmake --build "$BUILD_DIR" --target rap_checked_mode_test rapcc -j "$(nproc)"

# The acceptance matrix: 37 routines x {gra,rap} x k in {3,5,7,9}, verified,
# zero fallbacks, checksums equal to the unallocated reference.
"$BUILD_DIR/tests/rap_checked_mode_test"

# Degradation path end to end: an injected coloring fault must degrade the
# function to the spill-everything fallback, keep the result correct, and
# flip the exit code to 3.
TMP_MC="$(mktemp --suffix=.mc)"
trap 'rm -f "$TMP_MC"' EXIT
cat > "$TMP_MC" <<'EOF'
int f(int n) {
  int a = 1; int b = 2; int c = 3; int d = 4; int i;
  for (i = 0; i < n; i = i + 1) { a = a + b; b = b + c; c = c + d; d = d + a; }
  return a + b + c + d;
}
int main() { return f(10); }
EOF

WANT="$("$BUILD_DIR/src/driver/rapcc" "$TMP_MC" --alloc=none | head -1)"

set +e
GOT="$(RAP_FAULT_INJECT=color:1 "$BUILD_DIR/src/driver/rapcc" "$TMP_MC" \
       --alloc=rap -k 3 --verify 2>/dev/null | head -1)"
STATUS=$?
set -e
if [ "$STATUS" -ne 3 ]; then
  echo "FAIL: expected exit 3 (degraded) from injected fault, got $STATUS" >&2
  exit 1
fi
if [ "$GOT" != "$WANT" ]; then
  echo "FAIL: degraded run printed '$GOT', reference printed '$WANT'" >&2
  exit 1
fi

echo "checked-mode smoke OK (37 routines verified; fallback path exits 3)"
