#!/usr/bin/env bash
# Smoke-tests the rapd compile server end to end and refreshes the committed
# server-load benchmark section:
#
#   1. replays an editing-session request trace through rapd over stdio:
#      cold compile, warm replays, a mutated function, a batch, stats/ping,
#      deliberate bad-request and compile-error probes — asserting ZERO
#      unexpected protocol errors, a nonzero cache-hit rate, and that every
#      warm response's output_hash matches the cold compile of that source;
#   2. replays a shorter trace over a unix-domain socket (the second
#      transport) with the same assertions;
#   3. drains rapd with a real SIGTERM landing mid-batch and asserts the
#      crash-only contract: every admitted request got exactly one
#      well-formed response (zero lost), no response arrives after the ones
#      that were in flight finish, and the exit code is 0 (fast drain) /
#      3 (a tiny --drain-ms forced the drain watcher to cancel work);
#   4. runs bench/server_chaos (seeded fault schedule over every server
#      chaos site, mid-request shutdowns included) and asserts its
#      exactly-one-response + bit-identical-output invariants;
#   5. runs bench/server_load (cold-vs-warm, 10% edit rate) and merges its
#      rap-bench-v1 JSON into BENCH_alloc.json as the "server_load" section,
#      asserting the acceptance bar: warm >= 2x cold functions/sec at a
#      >= 80% hit rate.
#
# Usage: scripts/server_smoke.sh [build-dir]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"

cmake -S "$REPO_ROOT" -B "$BUILD_DIR" >/dev/null
cmake --build "$BUILD_DIR" --target rapd server_load server_chaos -j "$(nproc)"

RAPD="$BUILD_DIR/src/server/rapd"

# --- 1. stdio trace replay ------------------------------------------------
python3 - "$RAPD" <<'PYEOF'
import json, subprocess, sys

rapd = sys.argv[1]

def fn(i, version):
    return (f"int work{i}(int n) {{\n"
            f"  int a = n + {version * 7 + i};\n"
            f"  int b = a * 3 + {version};\n"
            f"  int c = a - b;\n"
            f"  for (int j = 0; j < n; j = j + 1) {{\n"
            f"    a = a + b * j % 997;\n"
            f"    b = b + c - j;\n"
            f"    c = c + a % 613;\n"
            f"  }}\n"
            f"  return a + b + c;\n"
            f"}}\n")

def module(versions):
    src = "".join(fn(i, v) for i, v in enumerate(versions))
    calls = "".join(f"  acc = acc + work{i}(5);\n" for i in range(len(versions)))
    return src + "int main() {\n  int acc = 0;\n" + calls + "  return acc;\n}\n"

base = module([0, 0, 0, 0])
edited = module([0, 1, 0, 0])  # one function mutated

trace = [
    {"id": 1, "op": "compile", "source": base,
     "options": {"alloc": "rap", "k": 3, "run": True}},   # cold
    {"id": 2, "op": "compile", "source": base,
     "options": {"alloc": "rap", "k": 3, "run": True}},   # fully warm
    {"id": 3, "op": "compile", "source": edited,
     "options": {"alloc": "rap", "k": 3}},                # one miss
    [{"id": 4, "op": "stats"}, {"id": 5, "op": "ping"}],  # batch
    {"id": 6, "op": "compile", "source": "int main() { return }",
     "options": {"alloc": "rap"}},                        # compile-error
    {"not": "a request"},                                 # bad-request
    {"id": 7, "op": "shutdown"},
]
payload = "".join(json.dumps(r) + "\n" for r in trace)

proc = subprocess.run([rapd, "--shards=2"], input=payload,
                      capture_output=True, text=True, timeout=300)
assert proc.returncode == 0, f"rapd exit {proc.returncode}: {proc.stderr}"
lines = [json.loads(l) for l in proc.stdout.splitlines() if l.strip()]

banner = lines[0]
assert banner.get("rapd") == "v1", f"missing hello banner: {banner}"
by_id = {}
for resp in lines[1:]:
    for r in (resp if isinstance(resp, list) else [resp]):
        by_id[r.get("id")] = r

protocol_errors = [r for r in by_id.values()
                   if not r["ok"] and r.get("id") not in (6, None)]
assert not protocol_errors, f"unexpected protocol errors: {protocol_errors}"

cold, warm, miss = by_id[1], by_id[2], by_id[3]
assert cold["ok"] and cold["cache_misses"] == 5 and cold["cache_hits"] == 0
assert cold["exec"]["ok"], f"cold exec failed: {cold['exec']}"
assert warm["cache_hits"] == 5 and warm["cache_misses"] == 0, \
    f"warm not fully cached: {warm}"
assert warm["output_hash"] == cold["output_hash"], \
    "warm response diverged from cold compile"
assert warm["exec"] == cold["exec"], "warm execution diverged from cold"
assert miss["cache_misses"] == 1 and miss["cache_hits"] == 4, \
    f"edit should re-allocate exactly one function: {miss}"
assert miss["output_hash"] != cold["output_hash"]

stats = by_id[4]["stats"]
assert stats["cache_hits"] >= 9 and stats["requests"] >= 3, stats
assert by_id[5]["kind"] == "pong"
assert by_id[6]["kind"] == "compile-error"
assert by_id[None]["kind"] == "bad-request"
assert by_id[7]["kind"] == "shutting-down"

hit_rate = stats["cache_hits"] / (stats["cache_hits"] + stats["cache_misses"])
print(f"stdio trace OK: {len(by_id)} responses, 0 protocol errors, "
      f"hit rate {100 * hit_rate:.0f}%")
PYEOF

# --- 2. unix-domain socket transport --------------------------------------
python3 - "$RAPD" <<'PYEOF'
import json, os, socket, subprocess, sys, tempfile, time

rapd = sys.argv[1]
path = os.path.join(tempfile.mkdtemp(prefix="rapd_smoke_"), "rapd.sock")
proc = subprocess.Popen([rapd, f"--socket={path}", "--shards=2", "--no-hello"],
                        stdout=subprocess.PIPE, stderr=subprocess.PIPE)
try:
    for _ in range(200):
        if os.path.exists(path):
            break
        time.sleep(0.05)
    else:
        raise AssertionError("rapd socket never appeared")

    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.connect(path)
    io = sock.makefile("rw", encoding="utf-8")

    src = ("int f(int n) {\n  int s = 0;\n"
           "  for (int i = 0; i < n; i = i + 1) { s = s + i * i; }\n"
           "  return s;\n}\n"
           "int main() { return f(10); }\n")
    def ask(req):
        io.write(json.dumps(req) + "\n")
        io.flush()
        return json.loads(io.readline())

    cold = ask({"id": 1, "op": "compile", "source": src,
                "options": {"alloc": "rap", "k": 3}})
    warm = ask({"id": 2, "op": "compile", "source": src,
                "options": {"alloc": "rap", "k": 3}})
    assert cold["ok"] and warm["ok"], (cold, warm)
    assert warm["cache_hits"] == 2 and warm["cache_misses"] == 0, warm
    assert warm["output_hash"] == cold["output_hash"]
    bye = ask({"id": 3, "op": "shutdown"})
    assert bye["kind"] == "shutting-down"
    sock.close()
    assert proc.wait(timeout=60) == 0, proc.returncode
    print("socket trace OK: warm hash matches cold, clean shutdown")
finally:
    if proc.poll() is None:
        proc.kill()
    if os.path.exists(path):
        os.unlink(path)
PYEOF

# --- 3. SIGTERM mid-batch: graceful drain, zero lost responses --------------
python3 - "$RAPD" <<'PYEOF'
import json, os, signal, subprocess, sys, time

rapd = sys.argv[1]

def fn(i):
    # Pressure-heavy body: many simultaneously-live values so allocation at
    # k=3 does real spilling work and a module of these cannot finish inside
    # the drain watcher's poll latency.
    return (f"int job{i}(int n) {{\n"
            f"  int a = n + {i}; int b = a * 3; int c = a - b;\n"
            f"  int d = a * b % 9973; int e = c + d; int f = e * 2;\n"
            f"  for (int j = 0; j < n; j = j + 1) {{\n"
            f"    int t = a * j + b;\n"
            f"    if (t % 2 == 0) {{ a = a + c * j; b = b + e; }}\n"
            f"    else {{ d = d + f - t; e = e + a % 367; }}\n"
            f"    c = c + (a + b) % 275; f = f + (c - d) * 3;\n"
            f"  }}\n  return a + b + c + d + e + f;\n}}\n")

def module(count, salt):
    src = "".join(fn(i * 131 + salt) for i in range(count))
    calls = "".join(f"  acc = acc + job{i * 131 + salt}(5);\n"
                    for i in range(count))
    return src + "int main() {\n  int acc = 0;\n" + calls + "  return acc;\n}\n"

def drain_run(drain_ms, heavy, settle):
    # A batch of distinct compiles keeps the server busy long enough for the
    # signal to land mid-work; stdin stays open so only the signal (not EOF)
    # can end the serve loop.
    reqs = [{"id": i, "op": "compile", "source": module(heavy, i),
             "options": {"alloc": "rap", "k": 3}} for i in range(1, 7)]
    proc = subprocess.Popen(
        [rapd, "--shards=2", "--no-hello", f"--drain-ms={drain_ms}"],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True)
    for r in reqs:
        proc.stdin.write(json.dumps(r) + "\n")
    proc.stdin.flush()
    time.sleep(settle)  # let the batch get admitted and in flight
    proc.send_signal(signal.SIGTERM)
    out, err = proc.communicate(timeout=300)
    lines = [json.loads(l) for l in out.splitlines() if l.strip()]
    ids = [l.get("id") for l in lines]
    # Exactly-one-response: no duplicates, ids form a prefix of the trace
    # (admission stops at the signal; everything admitted answers).
    assert len(ids) == len(set(ids)), f"duplicate responses: {ids}"
    assert ids == [r["id"] for r in reqs][:len(ids)], \
        f"responses not a prefix of admissions: {ids}"
    for l in lines:
        assert l["ok"] or l.get("kind") in ("cancelled", "deadline-exceeded"), \
            f"malformed drained response: {l}"
    return proc.returncode, lines

# Generous drain window: whatever was admitted finishes, exit 0.
code, lines = drain_run(drain_ms=60000, heavy=2, settle=0.15)
assert code == 0, f"clean drain exited {code}"
assert all(l["ok"] for l in lines), f"clean drain cancelled work: {lines}"

# 1ms drain window + heavy compiles (the signal lands early, well inside
# the first compile): the drain watcher must cancel what is in flight
# (responses still delivered, kind "cancelled") and exit 3.
code, lines = drain_run(drain_ms=1, heavy=160, settle=0.05)
assert code == 3, f"degraded drain exited {code}, want 3"
assert any(not l["ok"] and l.get("kind") == "cancelled" for l in lines), \
    f"degraded drain produced no cancelled response: {lines}"
print(f"SIGTERM drain OK: clean drain exit 0, forced drain exit 3, "
      f"zero lost responses")
PYEOF

# --- 4. chaos soak: every server fault site, exactly-one-response -----------
"$BUILD_DIR/bench/server_chaos" --requests=200 --shards=4 --seed=1

# --- 5. load bench -> BENCH_alloc.json "server_load" section ---------------
"$BUILD_DIR/bench/server_load" --json --requests=100 --edit-rate=0.1 \
  > "$REPO_ROOT/BENCH_server_tmp.json"
python3 "$REPO_ROOT/scripts/merge_bench_section.py" \
  "$REPO_ROOT/BENCH_alloc.json" server_load "$REPO_ROOT/BENCH_server_tmp.json"
rm -f "$REPO_ROOT/BENCH_server_tmp.json"
python3 - "$REPO_ROOT" <<'PYEOF'
import json, sys
doc = json.load(open(f"{sys.argv[1]}/BENCH_alloc.json"))["server_load"]
warm = [r for r in doc["rows"] if r["mode"] == "warm"][0]
assert warm["speedup_vs_cold"] >= 2.0, \
    f"warm speedup {warm['speedup_vs_cold']:.2f}x below the 2x bar"
assert warm["hit_rate_pct"] >= 80.0, \
    f"hit rate {warm['hit_rate_pct']:.1f}% below the 80% bar"
print(f"server load OK: {warm['speedup_vs_cold']:.2f}x functions/sec over "
      f"cold at {warm['hit_rate_pct']:.1f}% hit rate "
      f"(p50 {warm['p50_us']:.0f}us, p99 {warm['p99_us']:.0f}us)")
PYEOF

echo "server smoke OK; counters merged into $REPO_ROOT/BENCH_alloc.json"
