#!/usr/bin/env bash
# Builds the tree and smoke-runs the allocation benchmarks: a quick signal
# that the harnesses still compile, run, and emit their counters. Timings
# from the tiny min_time are NOT meaningful; use a longer --benchmark_min_time
# run for real measurements.
#
# Usage: scripts/bench_smoke.sh [build-dir]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"

cmake -S "$REPO_ROOT" -B "$BUILD_DIR" >/dev/null
cmake --build "$BUILD_DIR" --target alloc_cost alloc_scale -j "$(nproc)"

OUT="$BUILD_DIR/BENCH_alloc.json"
"$BUILD_DIR/bench/alloc_cost" \
  --benchmark_min_time=0.01 \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json

# alloc_scale's startup verifies serial == parallel output before timing.
"$BUILD_DIR/bench/alloc_scale" --benchmark_min_time=0.01 \
  --benchmark_filter='rap/all37/k3/t4'

echo "bench smoke OK; counters in $OUT"
