#!/usr/bin/env bash
# Builds the tree and smoke-runs the allocation benchmarks: a quick signal
# that the harnesses still compile, run, and emit their counters. Timings
# from the tiny min_time are NOT meaningful; use a longer --benchmark_min_time
# run for real measurements.
#
# Artifacts (repo root, committed snapshots, refreshed + uploaded by CI):
#   BENCH_alloc.json  machine-readable "rap-bench-v1" counters (alloc_cost
#                     --json), plus an "interp_throughput" section recording
#                     the threaded-vs-switch interpreter speedup over the
#                     Table 1 corpus (interp_throughput --json)
#   BENCH_trace.json  sample Chrome trace of a rapcc allocation (--trace)
#
# Usage: scripts/bench_smoke.sh [build-dir]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"

cmake -S "$REPO_ROOT" -B "$BUILD_DIR" >/dev/null
cmake --build "$BUILD_DIR" --target alloc_cost alloc_scale interp_throughput region_scale rapcc -j "$(nproc)"

# Machine-readable counters, shared rap-bench-v1 schema. Sections are merged
# through merge_bench_section.py, which tolerates a missing/partial prior
# BENCH_alloc.json and preserves sections other harnesses (server_smoke.sh's
# "server_load") have already written — re-runs are idempotent in any order.
"$BUILD_DIR/bench/alloc_cost" --json > "$REPO_ROOT/BENCH_alloc_tmp.json"
python3 "$REPO_ROOT/scripts/merge_bench_section.py" \
  "$REPO_ROOT/BENCH_alloc.json" . "$REPO_ROOT/BENCH_alloc_tmp.json" \
  || { echo "BENCH_alloc.json merge failed schema check" >&2; exit 1; }
rm -f "$REPO_ROOT/BENCH_alloc_tmp.json"

# Interpreter throughput (threaded vs reference switch engine, interleaved
# medians) folded into BENCH_alloc.json as its "interp_throughput" section:
# one committed artifact carries both the allocation counters and the
# interpreter speedup snapshot.
"$BUILD_DIR/bench/interp_throughput" --json --reps=3 > "$REPO_ROOT/BENCH_interp_tmp.json"
python3 "$REPO_ROOT/scripts/merge_bench_section.py" \
  "$REPO_ROOT/BENCH_alloc.json" interp_throughput "$REPO_ROOT/BENCH_interp_tmp.json"
python3 - "$REPO_ROOT" <<'PYEOF'
import json, sys
root = sys.argv[1]
interp = json.load(open(f"{root}/BENCH_alloc.json"))["interp_throughput"]
agg = [r for r in interp["rows"] if r["program"] == "ALL"][0]
print(f"interp throughput: {agg['threaded_minstr_per_sec']:.0f} Mi/s threaded vs "
      f"{agg['switch_minstr_per_sec']:.0f} Mi/s switch ({agg['speedup']:.2f}x)")
PYEOF
rm -f "$REPO_ROOT/BENCH_interp_tmp.json"

# Region-parallel single-function allocation scaling ("region_scale"
# section): the harness refuses to emit timings unless the allocated output
# is bit-identical across every region-thread count, so this doubles as a
# determinism smoke for the speculative region-parallel first round.
"$BUILD_DIR/bench/region_scale" --json > "$REPO_ROOT/BENCH_region_tmp.json"
python3 "$REPO_ROOT/scripts/merge_bench_section.py" \
  "$REPO_ROOT/BENCH_alloc.json" region_scale "$REPO_ROOT/BENCH_region_tmp.json"
python3 - "$REPO_ROOT" <<'PYEOF'
import json, sys
root = sys.argv[1]
rows = json.load(open(f"{root}/BENCH_alloc.json"))["region_scale"]["rows"]
best = max(rows, key=lambda r: r["speedup_vs_serial"])
print(f"region scale: {len(rows)} rows, output hash {rows[0]['output_hash']} "
      f"bit-identical across thread counts; best speedup "
      f"{best['speedup_vs_serial']:.2f}x at {best['region_threads']} threads "
      f"({best['host_cores']} host cores)")
PYEOF
rm -f "$REPO_ROOT/BENCH_region_tmp.json"

# Sample allocation trace (Chrome trace-event JSON, one rapcc compile).
TRACE_SRC="$(mktemp /tmp/bench_smoke.XXXXXX.mc)"
trap 'rm -f "$TRACE_SRC"' EXIT
cat > "$TRACE_SRC" <<'EOF'
int f(int n) {
  int s = 0;
  int i = 0;
  while (i < n) { s = s + i * i; i = i + 1; }
  return s;
}
int main() {
  int t = 0;
  int j = 0;
  while (j < 10) { t = t + f(j); j = j + 1; }
  return t;
}
EOF
"$BUILD_DIR/src/driver/rapcc" "$TRACE_SRC" --trace="$REPO_ROOT/BENCH_trace.json" >/dev/null

# google-benchmark harness still runs end to end (timings not checked).
"$BUILD_DIR/bench/alloc_cost" --benchmark_min_time=0.01 \
  --benchmark_out="$BUILD_DIR/BENCH_alloc_gbench.json" \
  --benchmark_out_format=json

# alloc_scale's startup verifies serial == parallel output before timing.
"$BUILD_DIR/bench/alloc_scale" --benchmark_min_time=0.01 \
  --benchmark_filter='rap/all37/k3/t4'

echo "bench smoke OK; counters in $REPO_ROOT/BENCH_alloc.json, trace in $REPO_ROOT/BENCH_trace.json"
