#!/usr/bin/env bash
# Fuzz smoke: a time-boxed slice of the crash-free compilation contract
# (DESIGN.md §10) for CI. Two stages:
#
#  1. Clean sweep — a fixed seed range of generator programs plus byte/
#     token/AST mutants through parse -> sema -> lower -> {gra,rap} x
#     k in {3,5,7,9} -> differential execution. Any crash, hang,
#     allocation failure, or behaviour mismatch fails the script; repro
#     artifacts land in the --out directory for upload.
#
#  2. Fault drill — injects a coloring fault with fallback disabled and
#     asserts the failure pipeline itself works: the sweep must *fail*,
#     write a minimized repro (<= 25% of the base program), and that
#     artifact must replay to the identical failure signature.
#
# Seeds are fixed so CI runs are reproducible; the full nightly-scale sweep
# is `rapfuzz --seeds=0:1250 --mutations=7` (10k inputs, ~1 min).
#
# Usage: scripts/fuzz_smoke.sh [build-dir]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
RAPFUZZ="$BUILD_DIR/src/fuzz/rapfuzz"
OUT_DIR="${FUZZ_OUT_DIR:-$REPO_ROOT/FUZZ_repros}"

cmake -S "$REPO_ROOT" -B "$BUILD_DIR" >/dev/null
cmake --build "$BUILD_DIR" --target rapfuzz -j "$(nproc)"

rm -rf "$OUT_DIR"

# Stage 1: clean sweep. 500 generator seeds x (1 base + 7 mutants) = 4000
# inputs, ~30s; --max-seconds time-boxes it if a runner is slow.
"$RAPFUZZ" --seeds=0:500 --mutations=7 --level=mix --out="$OUT_DIR" \
           --max-seconds=120 -q
echo "fuzz smoke: clean sweep OK"

# Stage 2: fault drill. The injected fault must surface as a failure (exit
# 1) with a minimized repro on disk.
DRILL_DIR="$(mktemp -d)"
trap 'rm -rf "$DRILL_DIR"' EXIT
set +e
"$RAPFUZZ" --seeds=0:2 --mutations=0 --fault=color:1 --out="$DRILL_DIR" -q
STATUS=$?
set -e
if [ "$STATUS" -ne 1 ]; then
  echo "FAIL: fault drill expected exit 1 (failures found), got $STATUS" >&2
  exit 1
fi

REPRO="$(find "$DRILL_DIR" -name 'repro-*.mc' | head -1)"
if [ -z "$REPRO" ]; then
  echo "FAIL: fault drill produced no repro artifact" >&2
  exit 1
fi

# The minimized repro must be small (acceptance bound: <= 25% of the ~1KB
# generator programs; in practice it reduces to ~12 bytes plus the header)
# and must replay to the same failing signature (exit 1 again).
BODY_BYTES="$(sed '/^\/\//d' "$REPRO" | wc -c)"
if [ "$BODY_BYTES" -gt 256 ]; then
  echo "FAIL: minimized repro is $BODY_BYTES bytes (expected <= 256)" >&2
  exit 1
fi
set +e
"$RAPFUZZ" --replay="$REPRO" --fault=color:1 -q
STATUS=$?
set -e
if [ "$STATUS" -ne 1 ]; then
  echo "FAIL: minimized repro did not replay (exit $STATUS)" >&2
  exit 1
fi

echo "fuzz smoke OK (4000-input clean sweep; fault drill minimized to $BODY_BYTES bytes and replayed)"
