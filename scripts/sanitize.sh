#!/usr/bin/env bash
# Builds the tree with AddressSanitizer + UndefinedBehaviorSanitizer into a
# separate build directory and runs the full test suite under both. The
# robustness layer converts allocator failures into exceptions that cross
# module boundaries, so an instrumented run is the cheapest way to prove the
# error paths neither leak nor touch freed IR.
#
# Usage: scripts/sanitize.sh [build-dir]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build-sanitize}"

cmake -S "$REPO_ROOT" -B "$BUILD_DIR" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)"

ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "sanitized test run OK in $BUILD_DIR"
