#!/usr/bin/env bash
# Builds the tree under a sanitizer into a separate build directory and runs
# the test suite instrumented. Two modes:
#
#   asan (default) — AddressSanitizer + UndefinedBehaviorSanitizer over the
#     full suite. The robustness layer converts allocator failures into
#     exceptions that cross module boundaries, so an instrumented run is the
#     cheapest way to prove the error paths neither leak nor touch freed IR.
#   tsan — ThreadSanitizer over the concurrency-bearing subset (shard pool,
#     bounded queue, compile service, server drain, parallel allocation).
#     The crash-only serving layer (DESIGN.md §13) lives and dies by the
#     ordering between workers, the drain watcher, the watchdog, and the
#     serve loop; TSan is the referee.
#
# Usage: scripts/sanitize.sh [asan|tsan] [build-dir]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
MODE="${1:-asan}"
BUILD_DIR="${2:-$REPO_ROOT/build-$MODE}"

case "$MODE" in
asan)
  SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
  ;;
tsan)
  SAN_FLAGS="-fsanitize=thread"
  ;;
*)
  echo "usage: scripts/sanitize.sh [asan|tsan] [build-dir]" >&2
  exit 2
  ;;
esac

cmake -S "$REPO_ROOT" -B "$BUILD_DIR" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="$SAN_FLAGS" \
  -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS" >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)"

if [ "$MODE" = tsan ]; then
  # The threaded surface: everything that spawns workers or races a drain
  # (ctest names are gtest suite.case, so match the suite prefixes).
  TSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" \
    --no-tests=error \
    -R '^(Server|Shard|BoundedQueue|Service|Deadline|AllocBudget|ParallelDeterminism)'
else
  ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
fi

echo "sanitized ($MODE) test run OK in $BUILD_DIR"
