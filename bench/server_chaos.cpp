//===- bench/server_chaos.cpp - rapd crash-only chaos/soak harness ----------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
//
// Soaks the serving core (Server::handleLine — the exact path both rapd
// transports feed) with a deterministic request trace while a seeded fault
// schedule fires every server-layer chaos site from DESIGN.md §13:
//
//   parse            dispatch answers a contained "internal-error"
//   cache-insert     an allocation-cache insert is dropped
//   stall            a shard worker wedges, ignoring its cancel token
//   shutdown         the stop flag flips mid-request (as if SIGTERM landed);
//                    the harness then drains that server instance and starts
//                    a fresh one — the crash-only restart — and replays on
//   journal-write    a durable-cache journal append fails (DESIGN.md §15);
//                    the store must degrade to in-memory-only, never crash
//   snapshot-compact a snapshot compaction fails; same degrade contract
//
// The trace mixes plain compiles, deadline-carrying compiles, batches,
// pings, stats, malformed JSON, and an oversized line. Two passes run: a
// fault-free reference and the chaos pass. Invariants asserted (FATAL +
// exit 1 on violation):
//
//   * exactly one well-formed JSON response per admitted line, ids echoed,
//     batch responses in request order — under every fault;
//   * every compile the chaos pass answers ok has an output_hash identical
//     to the fault-free reference for the same request id (faults and
//     restarts may turn hits into misses, never change compiled bytes);
//   * after the soak no shard is left degraded and a probe compile still
//     answers ok — zero wedged shards;
//   * a deadline-bearing request over a deliberately oversized module
//     answers "deadline-exceeded" within 2x its deadline;
//   * every chaos site demonstrably fired (internal-errors seen, restarts
//     seen, service-layer injections counted, deadlines exceeded).
//
// Output: a human summary (default) or --json in the shared rap-bench-v1
// envelope (bench = "server-chaos"); scripts/server_smoke.sh merges the
// JSON into BENCH_alloc.json as its "server_chaos" section.
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"
#include "support/Json.h"

#include <chrono>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

using namespace rap;
using namespace rap::server;

namespace {

//===----------------------------------------------------------------------===//
// Module generator (same shape as server_load: pressure-heavy functions
// whose fingerprints change when their version counter is bumped).
//===----------------------------------------------------------------------===//

std::string functionSource(unsigned Index, unsigned Version) {
  char Buf[1024];
  std::snprintf(Buf, sizeof(Buf),
                "int job%u(int n, int seed) {\n"
                "  int a = seed + %u;\n"
                "  int b = seed * 3 + %u;\n"
                "  int c = a - b + 11;\n"
                "  int d = a * b %% 9973;\n"
                "  int e = c + d;\n"
                "  int f = e * 2 - a;\n"
                "  for (int i = 0; i < n; i = i + 1) {\n"
                "    int t = a * i + b;\n"
                "    if (t %% 2 == 0) {\n"
                "      a = a + c * i - d;\n"
                "      b = b + e %% 4099;\n"
                "    } else {\n"
                "      d = d + f * 2 - t;\n"
                "      e = e + a %% 3671;\n"
                "    }\n"
                "    c = c + (a + b) %% 2753;\n"
                "    f = f + (c - d) * 3;\n"
                "  }\n"
                "  return a + b + c + d + e + f;\n"
                "}\n",
                Index, Version * 7 + Index, Version * 13 + 5);
  return Buf;
}

std::string moduleSource(const std::vector<unsigned> &Versions) {
  std::string S;
  S.reserve(Versions.size() * 768 + 256);
  for (unsigned I = 0; I != Versions.size(); ++I)
    S += functionSource(I, Versions[I]);
  S += "int main() {\n  int acc = 0;\n";
  for (unsigned I = 0; I != Versions.size(); ++I) {
    char Line[64];
    std::snprintf(Line, sizeof(Line), "  acc = acc + job%u(5, %u);\n", I,
                  I + 1);
    S += Line;
  }
  S += "  return acc;\n}\n";
  return S;
}

struct Rng {
  uint64_t State;
  explicit Rng(uint64_t Seed) : State(Seed ? Seed : 0x9e3779b97f4a7c15ull) {}
  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545f4914f6cdd1dull;
  }
};

std::string jsonEscaped(const std::string &S) {
  return json::Value(S).str();
}

//===----------------------------------------------------------------------===//
// Trace generation: one NDJSON line per entry, deterministic under --seed.
//===----------------------------------------------------------------------===//

std::string compileRequest(int64_t Id, const std::string &Source,
                           uint64_t DeadlineMs) {
  std::string Line = "{\"op\":\"compile\",\"id\":" + std::to_string(Id) +
                     ",\"source\":" + jsonEscaped(Source) +
                     ",\"options\":{\"alloc\":\"rap\",\"k\":3";
  if (DeadlineMs)
    Line += ",\"deadline_ms\":" + std::to_string(DeadlineMs);
  Line += "}}";
  return Line;
}

struct Trace {
  std::vector<std::string> Lines;
  /// Expected response ids per line, in order; empty = a line that answers
  /// without an id (malformed / oversized).
  std::vector<std::vector<int64_t>> Ids;
  unsigned CompileCount = 0;
};

Trace buildTrace(unsigned Requests, unsigned Functions, uint64_t Seed,
                 size_t MaxLineBytes) {
  Trace T;
  Rng Rand(Seed);
  std::vector<unsigned> Versions(Functions, 0);
  int64_t NextId = 1;
  for (unsigned I = 0; I != Requests; ++I) {
    unsigned Pick = static_cast<unsigned>(Rand.next() % 100);
    if (Pick < 4) {
      // Malformed JSON: answered bad-request, no id.
      T.Lines.push_back("{\"op\":\"compile\",\"id\":");
      T.Ids.emplace_back();
    } else if (Pick < 6) {
      T.Lines.push_back("{\"op\":\"ping\",\"id\":" + std::to_string(NextId) +
                        "}");
      T.Ids.push_back({NextId++});
    } else if (Pick < 8) {
      T.Lines.push_back("{\"op\":\"stats\",\"id\":" + std::to_string(NextId) +
                        "}");
      T.Ids.push_back({NextId++});
    } else if (Pick < 14) {
      // Batch of two compiles: one admission unit, ordered responses.
      Versions[Rand.next() % Functions] += 1;
      std::string A = compileRequest(NextId, moduleSource(Versions), 0);
      int64_t IdA = NextId++;
      Versions[Rand.next() % Functions] += 1;
      std::string B = compileRequest(NextId, moduleSource(Versions), 0);
      int64_t IdB = NextId++;
      T.Lines.push_back("[" + A + "," + B + "]");
      T.Ids.push_back({IdA, IdB});
      T.CompileCount += 2;
    } else {
      // Plain compile; one in eight carries a deadline too tight for a cold
      // module (1ms), exercising the deadline-exceeded path mid-soak.
      Versions[Rand.next() % Functions] += 1;
      uint64_t DeadlineMs = (Pick % 8 == 0) ? 1 : 0;
      T.Lines.push_back(
          compileRequest(NextId, moduleSource(Versions), DeadlineMs));
      T.Ids.push_back({NextId++});
      T.CompileCount += 1;
    }
  }
  // One oversized line: valid JSON, but longer than the server's line cap;
  // must answer a stable bad-request (no id — the server never parses it).
  std::string Huge = "{\"op\":\"ping\",\"id\":777,\"pad\":\"";
  Huge.append(MaxLineBytes + 64, 'x');
  Huge += "\"}";
  T.Lines.push_back(std::move(Huge));
  T.Ids.emplace_back();
  return T;
}

//===----------------------------------------------------------------------===//
// Passes.
//===----------------------------------------------------------------------===//

struct PassStats {
  uint64_t Responses = 0;
  uint64_t Ok = 0;
  uint64_t BadRequest = 0;
  uint64_t InternalErrors = 0;
  uint64_t DeadlineExceeded = 0;
  uint64_t Cancelled = 0;
  uint64_t Restarts = 0;
  uint64_t ChaosInjected = 0;
  uint64_t WatchdogTrips = 0;
  // Durable-cache telemetry (passes with Service.CacheDir set).
  bool StoreDegraded = false;
  uint64_t JournalAppends = 0;
  uint64_t Compactions = 0;
  /// id -> output_hash of ok compile responses.
  std::map<int64_t, std::string> OkHashes;
};

void fatal(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  std::fprintf(stderr, "FATAL: ");
  std::vfprintf(stderr, Fmt, Args);
  std::fprintf(stderr, "\n");
  va_end(Args);
  std::exit(1);
}

/// Validates one response object against the expected id and folds its kind
/// into \p Stats.
void checkResponse(const json::Value &R, int64_t WantId, bool WantAnyId,
                   size_t LineNo, PassStats &Stats) {
  if (!R.isObject())
    fatal("line %zu: response item is not an object: %s", LineNo,
          R.str().c_str());
  if (!R.has("ok"))
    fatal("line %zu: response lacks 'ok': %s", LineNo, R.str().c_str());
  if (WantAnyId) {
    if (!R["id"].isInt() || R["id"].asInt() != WantId)
      fatal("line %zu: response id mismatch (want %lld): %s", LineNo,
            static_cast<long long>(WantId), R.str().c_str());
  }
  Stats.Responses += 1;
  if (R["ok"].asBool()) {
    Stats.Ok += 1;
    if (R.has("output_hash") && R["output_hash"].isString() && WantAnyId)
      Stats.OkHashes[WantId] = R["output_hash"].asString();
    return;
  }
  const std::string &Kind = R["kind"].isString() ? R["kind"].asString() : "";
  if (Kind == "bad-request")
    Stats.BadRequest += 1;
  else if (Kind == "internal-error")
    Stats.InternalErrors += 1;
  else if (Kind == "deadline-exceeded")
    Stats.DeadlineExceeded += 1;
  else if (Kind == "cancelled")
    Stats.Cancelled += 1;
  else if (Kind != "compile-error" && Kind != "overloaded")
    fatal("line %zu: unknown response kind '%s'", LineNo, Kind.c_str());
}

/// Replays the trace. With a chaos plan, a fired `shutdown` site flips the
/// server's stop flag; the harness then retires that server (its destructor
/// is the "crash") and replays the rest of the trace against a fresh one —
/// losing the cache, never a response.
PassStats runPass(const Trace &T, const ServerConfig &Base, bool Chaos) {
  PassStats Stats;
  std::unique_ptr<Server> S(new Server(Base));
  for (size_t I = 0; I != T.Lines.size(); ++I) {
    if (S->shutdownRequested()) {
      if (!Chaos)
        fatal("fault-free pass requested shutdown");
      // Quiesce check before the restart: handleLine returned for every
      // admitted line, so nothing is in flight and no shard may be wedged.
      ServiceCounters C = S->service().counters();
      if (C.ShardsDegraded != 0)
        fatal("shard left degraded at restart before line %zu", I);
      Stats.ChaosInjected += C.ChaosInjected;
      Stats.WatchdogTrips += C.WatchdogTrips;
      Stats.StoreDegraded |= C.StoreDegraded;
      Stats.JournalAppends += C.JournalAppends;
      Stats.Compactions += C.Compactions;
      S.reset(new Server(Base));
      Stats.Restarts += 1;
    }
    std::string Out = S->handleLine(T.Lines[I]);
    json::Value R;
    std::string Error;
    if (Out.empty() || !json::parse(Out, R, &Error))
      fatal("line %zu: response is not well-formed JSON (%s): %s", I,
            Error.c_str(), Out.c_str());
    const std::vector<int64_t> &Want = T.Ids[I];
    if (Want.size() > 1) {
      if (!R.isArray() || R.asArray().size() != Want.size())
        fatal("line %zu: batch of %zu answered %s", I, Want.size(),
              Out.c_str());
      for (size_t J = 0; J != Want.size(); ++J)
        checkResponse(R.asArray()[J], Want[J], true, I, Stats);
    } else {
      checkResponse(R, Want.empty() ? 0 : Want[0], !Want.empty(), I, Stats);
    }
  }

  // Post-soak probes on the surviving server: no wedged shards, and a fresh
  // compile still answers ok.
  ServiceCounters Final = S->service().counters();
  if (Final.ShardsDegraded != 0)
    fatal("shards left degraded after the soak");
  Stats.ChaosInjected += Final.ChaosInjected;
  Stats.WatchdogTrips += Final.WatchdogTrips;
  Stats.StoreDegraded |= Final.StoreDegraded;
  Stats.JournalAppends += Final.JournalAppends;
  Stats.Compactions += Final.Compactions;
  std::vector<unsigned> ProbeVersions(2, 99);
  std::string Probe = S->handleLine(
      compileRequest(999983, moduleSource(ProbeVersions), 0));
  json::Value PR;
  if (!json::parse(Probe, PR, nullptr) || !PR["ok"].asBool())
    fatal("post-soak probe compile failed: %s", Probe.c_str());
  return Stats;
}

/// The 2x-deadline acceptance check: a deadline-bearing request over a
/// module far too large for the budget must answer deadline-exceeded within
/// 2x the deadline (cooperative cancellation costs at most one allocation
/// round past expiry).
void checkDeadlineLatency(unsigned Shards) {
  ServerConfig Config;
  Config.Service.Shards = Shards;
  Server S(Config);
  std::vector<unsigned> Versions(96, 1);
  const uint64_t DeadlineMs = 200;
  std::string Line = compileRequest(1, moduleSource(Versions), DeadlineMs);
  auto T0 = std::chrono::steady_clock::now();
  std::string Out = S.handleLine(Line);
  double ElapsedMs = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - T0)
                         .count();
  json::Value R;
  if (!json::parse(Out, R, nullptr))
    fatal("deadline probe: unparseable response");
  const std::string Kind =
      R["kind"].isString() ? R["kind"].asString() : "(ok)";
  if (R["ok"].asBool())
    fatal("deadline probe compiled a 96-function module inside %llums; "
          "enlarge the probe",
          static_cast<unsigned long long>(DeadlineMs));
  if (Kind != "deadline-exceeded")
    fatal("deadline probe answered kind '%s'", Kind.c_str());
  if (ElapsedMs > 2.0 * static_cast<double>(DeadlineMs))
    fatal("deadline-exceeded took %.1fms, over 2x the %llums deadline",
          ElapsedMs, static_cast<unsigned long long>(DeadlineMs));
  std::fprintf(stderr,
               "deadline probe: deadline-exceeded in %.1fms (budget %llums, "
               "bound %.0fms)\n",
               ElapsedMs, static_cast<unsigned long long>(DeadlineMs),
               2.0 * static_cast<double>(DeadlineMs));
}

//===----------------------------------------------------------------------===//
// Flags.
//===----------------------------------------------------------------------===//

struct ChaosFlags {
  bool Json = false;
  unsigned Requests = 500;
  unsigned Functions = 6;
  unsigned Shards = 4;
  uint64_t Seed = 1;
  bool SkipDeadlineProbe = false;
  bool Ok = true;
  std::string Error;
};

ChaosFlags parseChaosFlags(int argc, char **argv) {
  ChaosFlags F;
  auto Unsigned = [&](const char *Arg, const char *Prefix, unsigned &Out) {
    const char *P = Arg + std::strlen(Prefix);
    char *End = nullptr;
    long V = std::strtol(P, &End, 10);
    if (End == P || *End != '\0' || V <= 0) {
      F.Ok = false;
      F.Error = std::string("bad value in '") + Arg + "'";
      return;
    }
    Out = static_cast<unsigned>(V);
  };
  for (int I = 1; I != argc; ++I) {
    const char *Arg = argv[I];
    if (std::strcmp(Arg, "--json") == 0) {
      F.Json = true;
    } else if (std::strncmp(Arg, "--requests=", 11) == 0) {
      Unsigned(Arg, "--requests=", F.Requests);
    } else if (std::strncmp(Arg, "--functions=", 12) == 0) {
      Unsigned(Arg, "--functions=", F.Functions);
    } else if (std::strncmp(Arg, "--shards=", 9) == 0) {
      Unsigned(Arg, "--shards=", F.Shards);
    } else if (std::strncmp(Arg, "--seed=", 7) == 0) {
      unsigned S = 0;
      Unsigned(Arg, "--seed=", S);
      F.Seed = S;
    } else if (std::strcmp(Arg, "--no-deadline-probe") == 0) {
      F.SkipDeadlineProbe = true;
    } else {
      F.Ok = false;
      F.Error = std::string("unknown option '") + Arg + "'";
    }
    if (!F.Ok)
      return F;
  }
  return F;
}

} // namespace

int main(int argc, char **argv) {
  ChaosFlags Flags = parseChaosFlags(argc, argv);
  if (!Flags.Ok) {
    std::fprintf(stderr, "server_chaos: %s\n", Flags.Error.c_str());
    std::fprintf(stderr,
                 "usage: server_chaos [--json] [--requests=N] "
                 "[--functions=N] [--shards=N] [--seed=N] "
                 "[--no-deadline-probe]\n");
    return 2;
  }

  const size_t MaxLineBytes = 256u << 10;
  ServerConfig Base;
  Base.Service.Shards = Flags.Shards;
  Base.MaxLineBytes = MaxLineBytes;
  // Keep the stall short and the watchdog eager: trips are telemetry here,
  // not latency.
  Base.Service.ChaosStallMs = 30;
  Base.Service.Watchdog.Factor = 2;
  Base.Service.Watchdog.PollMs = 2;

  Trace T = buildTrace(Flags.Requests, Flags.Functions, Flags.Seed,
                       MaxLineBytes);

  // Reference pass: no chaos plan (and an empty RAP_FAULT_INJECT: the
  // harness relies on its own schedule).
  PassStats Ref = runPass(T, Base, /*Chaos=*/false);

  // Chaos pass: a seeded schedule arming every server site several times.
  // Countdowns are derived from the seed but bounded well under the trace's
  // dispatch count, so every site is guaranteed to fire (restarts re-arm
  // the plan, which only fires them more often).
  Rng Rand(Flags.Seed * 0x9e3779b97f4a7c15ull + 1);
  ServerConfig ChaosConfig = Base;
  FaultPlan Plan;
  auto arm = [&](FaultSite Site, unsigned MaxCountdown, unsigned Count) {
    if (MaxCountdown == 0)
      MaxCountdown = 1;
    for (unsigned I = 0; I != Count; ++I) {
      FaultPlan::Arm A;
      A.Site = Site;
      A.Nth = 1 + static_cast<unsigned>(Rand.next() % MaxCountdown);
      Plan.Arms.push_back(A);
    }
  };
  unsigned Dispatches = Flags.Requests; // lower bound (batches add more)
  arm(FaultSite::ProtocolParse, Dispatches / 4, 3);
  arm(FaultSite::CacheInsert, Dispatches / 8, 3);
  arm(FaultSite::WorkerStall, Dispatches / 4, 2);
  arm(FaultSite::MidShutdown, Dispatches / 2, 1);
  ChaosConfig.Service.Chaos = Plan;
  PassStats Chaos = runPass(T, ChaosConfig, /*Chaos=*/true);

  // Every admitted line answered in both passes (runPass already fataled on
  // malformed or missing responses; this is the count check).
  if (Ref.Responses != Chaos.Responses)
    fatal("response counts diverged: %llu fault-free vs %llu chaos",
          static_cast<unsigned long long>(Ref.Responses),
          static_cast<unsigned long long>(Chaos.Responses));

  // Bit-identity: every compile the chaos pass answered ok must hash
  // exactly as the fault-free pass did (faults may flip hits to misses or
  // abort requests — they must never change compiled output).
  uint64_t Compared = 0;
  for (const auto &[Id, Hash] : Chaos.OkHashes) {
    auto It = Ref.OkHashes.find(Id);
    if (It == Ref.OkHashes.end())
      fatal("request %lld ok under chaos but not fault-free",
            static_cast<long long>(Id));
    if (It->second != Hash)
      fatal("request %lld output diverged under chaos (%s != %s)",
            static_cast<long long>(Id), Hash.c_str(), It->second.c_str());
    Compared += 1;
  }

  // Site coverage: each fault family left its observable footprint.
  if (Chaos.InternalErrors == 0)
    fatal("parse site never fired (no internal-error responses)");
  if (Chaos.Restarts == 0)
    fatal("shutdown site never fired (no restarts)");
  if (Chaos.ChaosInjected == 0)
    fatal("cache-insert/stall sites never fired (chaos_injected == 0)");
  if (Chaos.DeadlineExceeded == 0)
    fatal("no deadline-exceeded responses in the soak");

  //===--------------------------------------------------------------------===//
  // Durable-cache chaos (DESIGN.md §15): replay the same trace against a
  // persistent store while each persistence fault site fires. The contract
  // is degrade-to-memory-only: the server keeps answering (same responses,
  // same hashes), persistence just stops. A fault-free persistent pass runs
  // first to prove the journal/compaction machinery actually engaged.
  //===--------------------------------------------------------------------===//

  namespace fs = std::filesystem;
  fs::path PersistRoot =
      fs::temp_directory_path() /
      ("rap_server_chaos_" + std::to_string(Flags.Seed));
  std::error_code EC;
  fs::remove_all(PersistRoot, EC);

  auto persistPass = [&](const char *Name, FaultPlan Plan) {
    ServerConfig PC = Base;
    PC.Service.CacheDir = (PersistRoot / Name).string();
    // Tiny threshold so compaction runs many times inside one soak.
    PC.Service.CacheCompactBytes = 4096;
    PC.Service.Chaos = std::move(Plan);
    PassStats St = runPass(T, PC, /*Chaos=*/true);
    if (St.Responses != Ref.Responses)
      fatal("%s pass lost responses: %llu vs %llu fault-free", Name,
            static_cast<unsigned long long>(St.Responses),
            static_cast<unsigned long long>(Ref.Responses));
    for (const auto &[Id, Hash] : St.OkHashes) {
      auto It = Ref.OkHashes.find(Id);
      if (It == Ref.OkHashes.end() || It->second != Hash)
        fatal("%s pass: request %lld output diverged", Name,
              static_cast<long long>(Id));
    }
    return St;
  };

  PassStats PersistRef = persistPass("fault-free", FaultPlan());
  if (PersistRef.StoreDegraded)
    fatal("fault-free persistent pass degraded the store");
  if (PersistRef.JournalAppends == 0)
    fatal("fault-free persistent pass never journaled");
  if (PersistRef.Compactions == 0)
    fatal("fault-free persistent pass never compacted (threshold too high?)");

  auto oneSite = [&](FaultSite Site) {
    FaultPlan P;
    FaultPlan::Arm A;
    A.Site = Site;
    A.Nth = 1 + static_cast<unsigned>(Rand.next() % 4);
    P.Arms.push_back(A);
    return P;
  };
  PassStats PJournal =
      persistPass("journal-write", oneSite(FaultSite::JournalWrite));
  if (!PJournal.StoreDegraded)
    fatal("journal-write site never fired (store not degraded)");
  PassStats PCompact =
      persistPass("snapshot-compact", oneSite(FaultSite::SnapshotCompact));
  if (!PCompact.StoreDegraded)
    fatal("snapshot-compact site never fired (store not degraded)");
  fs::remove_all(PersistRoot, EC);

  if (!Flags.SkipDeadlineProbe)
    checkDeadlineLatency(Flags.Shards);

  if (Flags.Json) {
    json::Object Row;
    Row["requests"] = static_cast<uint64_t>(T.Lines.size());
    Row["compiles"] = static_cast<uint64_t>(T.CompileCount);
    Row["responses"] = Chaos.Responses;
    Row["ok"] = Chaos.Ok;
    Row["bad_request"] = Chaos.BadRequest;
    Row["internal_errors"] = Chaos.InternalErrors;
    Row["deadline_exceeded"] = Chaos.DeadlineExceeded;
    Row["cancelled"] = Chaos.Cancelled;
    Row["restarts"] = Chaos.Restarts;
    Row["chaos_injected"] = Chaos.ChaosInjected;
    Row["watchdog_trips"] = Chaos.WatchdogTrips;
    Row["hashes_compared"] = Compared;
    Row["hash_mismatches"] = static_cast<uint64_t>(0);
    Row["lost_responses"] = static_cast<uint64_t>(0);
    Row["persist_journal_appends"] = PersistRef.JournalAppends;
    Row["persist_compactions"] = PersistRef.Compactions;
    Row["persist_degraded_runs"] = static_cast<uint64_t>(
        (PJournal.StoreDegraded ? 1 : 0) + (PCompact.StoreDegraded ? 1 : 0));
    json::Array Rows;
    Rows.push_back(json::Value(std::move(Row)));
    json::Object Root;
    Root["schema"] = "rap-bench-v1";
    Root["bench"] = "server-chaos";
    Root["rows"] = json::Value(std::move(Rows));
    std::printf("%s\n", json::Value(std::move(Root)).str().c_str());
    return 0;
  }

  std::printf("server chaos soak: %zu lines (%u compiles), seed %llu, "
              "%u shards\n",
              T.Lines.size(), T.CompileCount,
              static_cast<unsigned long long>(Flags.Seed), Flags.Shards);
  std::printf("  responses=%llu ok=%llu bad-request=%llu internal=%llu "
              "deadline=%llu cancelled=%llu\n",
              static_cast<unsigned long long>(Chaos.Responses),
              static_cast<unsigned long long>(Chaos.Ok),
              static_cast<unsigned long long>(Chaos.BadRequest),
              static_cast<unsigned long long>(Chaos.InternalErrors),
              static_cast<unsigned long long>(Chaos.DeadlineExceeded),
              static_cast<unsigned long long>(Chaos.Cancelled));
  std::printf("  restarts=%llu chaos-injected=%llu watchdog-trips=%llu\n",
              static_cast<unsigned long long>(Chaos.Restarts),
              static_cast<unsigned long long>(Chaos.ChaosInjected),
              static_cast<unsigned long long>(Chaos.WatchdogTrips));
  std::printf("  %llu ok responses byte-identical to the fault-free run; "
              "0 lost, 0 wedged shards\n",
              static_cast<unsigned long long>(Compared));
  std::printf("  persistence: appends=%llu compactions=%llu; journal-write "
              "and snapshot-compact faults both degraded to memory-only "
              "with identical responses\n",
              static_cast<unsigned long long>(PersistRef.JournalAppends),
              static_cast<unsigned long long>(PersistRef.Compactions));
  return 0;
}
