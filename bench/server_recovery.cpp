//===- bench/server_recovery.cpp - rapd kill -9 recovery soak ---------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
//
// The durable-crash-recovery acceptance soak (DESIGN.md §15). Spawns the
// *real* rapd binary under its own supervisor (`rapd --supervise`) on a
// Unix-domain socket with a persistent cache directory, then:
//
//   1. cold-compiles N distinct sources through the retrying Client,
//      recording each response's output_hash;
//   2. SIGKILLs the serving child (pid from the supervisor's pidfile)
//      several times, firing a burst of compile requests straight into each
//      crash window — the Client must reconnect-and-resend across the
//      supervised restart;
//   3. re-compiles every source and checks warm-hit retention.
//
// Gates (FATAL + exit 1, artifacts left on disk for upload):
//
//   * exactly once: every call() returned exactly one response
//     (Client Requests == Responses, no failed calls);
//   * bit-identity: every post-crash response's output_hash equals the
//     pre-crash cold compile of the same source — during the kill bursts
//     and in the final sweep;
//   * durability: >= 80% of the pre-crash sources answer fully warm
//     (zero misses) after recovery — the journal survived kill -9;
//   * recovery telemetry: the stats op's recovery block reports replayed
//     journal frames and a restart count covering every kill;
//   * clean shutdown: a shutdown op drains the child and the supervisor
//     exits 0, pidfile removed.
//
// Output: human summary (default) or --json in the rap-bench-v1 envelope
// (bench = "server-recovery"); scripts/server_recovery_smoke.sh merges it
// into BENCH_alloc.json as the "server_recovery" section.
//
//===----------------------------------------------------------------------===//

#include "server/Client.h"
#include "support/Json.h"

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define RAP_RECOVERY_HAVE_UNIX 1
#include <chrono>
#include <fcntl.h>
#include <filesystem>
#include <map>
#include <signal.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#else
#define RAP_RECOVERY_HAVE_UNIX 0
#endif

using namespace rap;
using namespace rap::server;

#if RAP_RECOVERY_HAVE_UNIX

namespace {

namespace fs = std::filesystem;

struct RecoveryFlags {
  bool Json = false;
  bool Keep = false;
  std::string Rapd;    ///< path to the rapd binary (required)
  std::string Dir;     ///< working dir (default under temp)
  unsigned Sources = 16;
  unsigned Kills = 3;
  unsigned Burst = 6;  ///< requests fired into each crash window
  bool Ok = true;
  std::string Error;
};

// Globals for fatal(): tear the supervisor down and point at the artifacts.
pid_t SupervisorPid = -1;
std::string ArtifactDir;
std::string PidFilePath;

void fatal(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  std::fprintf(stderr, "FATAL: ");
  std::vfprintf(stderr, Fmt, Args);
  std::fprintf(stderr, "\n");
  va_end(Args);
  if (SupervisorPid > 0) {
    // Kill the child first (the supervisor would just restart it), then the
    // supervisor itself, so the soak never leaks serving processes.
    if (FILE *F = std::fopen(PidFilePath.c_str(), "r")) {
      int Child = 0;
      if (std::fscanf(F, "%d", &Child) == 1 && Child > 1)
        ::kill(Child, SIGKILL);
      std::fclose(F);
    }
    ::kill(SupervisorPid, SIGKILL);
    int Status = 0;
    ::waitpid(SupervisorPid, &Status, 0);
  }
  if (!ArtifactDir.empty())
    std::fprintf(stderr, "artifacts left in %s (journal, supervisor log)\n",
                 ArtifactDir.c_str());
  std::exit(1);
}

/// One moderately pressure-heavy module per source index: distinct
/// constants give distinct fingerprints, shared shape keeps compiles fast.
std::string sourceFor(unsigned Index) {
  char Buf[1024];
  std::snprintf(Buf, sizeof(Buf),
                "int job(int n) {\n"
                "  int a = n + %u;\n"
                "  int b = a * 3 + %u;\n"
                "  int c = a - b + 11;\n"
                "  int d = a * b %% 9973;\n"
                "  int e = c + d;\n"
                "  for (int i = 0; i < n; i = i + 1) {\n"
                "    int t = a * i + b;\n"
                "    if (t %% 2 == 0) { a = a + c * i - d; b = b + e; }\n"
                "    else { d = d + t; e = e + a %% 3671; }\n"
                "    c = c + (a + b) %% 2753;\n"
                "  }\n"
                "  return a + b + c + d + e;\n"
                "}\n"
                "int main() { return job(%u); }\n",
                Index * 7 + 1, Index * 13 + 5, Index % 9 + 3);
  return Buf;
}

std::string compileLine(int64_t Id, const std::string &Source) {
  return "{\"op\":\"compile\",\"id\":" + std::to_string(Id) +
         ",\"source\":" + json::Value(Source).str() +
         ",\"options\":{\"alloc\":\"rap\",\"k\":3}}";
}

/// Spawns `rapd --supervise` with stderr into the artifact log. Returns the
/// supervisor pid.
pid_t spawnSupervisor(const RecoveryFlags &Flags, const std::string &Socket,
                      const std::string &CacheDir, const std::string &PidFile,
                      const std::string &Log) {
  pid_t Pid = ::fork();
  if (Pid < 0)
    fatal("fork: %s", std::strerror(errno));
  if (Pid != 0)
    return Pid;
  int LogFd = ::open(Log.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (LogFd >= 0) {
    ::dup2(LogFd, 2);
    ::close(LogFd);
  }
  std::string MaxCrashes =
      "--max-crashes=" + std::to_string(Flags.Kills + 5);
  std::vector<std::string> Args = {
      Flags.Rapd,
      "--supervise",
      "--pidfile=" + PidFile,
      "--socket=" + Socket,
      "--cache-dir=" + CacheDir,
      "--shards=2",
      "--backoff-ms=20",
      "--backoff-max-ms=200",
      MaxCrashes,
      "--no-hello",
  };
  std::vector<char *> Argv;
  for (std::string &A : Args)
    Argv.push_back(A.data());
  Argv.push_back(nullptr);
  ::execv(Flags.Rapd.c_str(), Argv.data());
  std::fprintf(stderr, "server_recovery: execv %s: %s\n", Flags.Rapd.c_str(),
               std::strerror(errno));
  _exit(127);
}

/// The serving child's pid, from the supervisor's pidfile; retries while
/// the supervisor is between restarts. -1 after the deadline.
int readChildPid(const std::string &PidFile, int DeadlineMs) {
  for (int Waited = 0; Waited <= DeadlineMs; Waited += 20) {
    if (FILE *F = std::fopen(PidFile.c_str(), "r")) {
      int Pid = 0;
      int Got = std::fscanf(F, "%d", &Pid);
      std::fclose(F);
      if (Got == 1 && Pid > 1 && ::kill(Pid, 0) == 0)
        return Pid;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return -1;
}

json::Value mustCall(Client &C, const std::string &Line) {
  json::Value Response;
  std::string Error;
  if (!C.call(Line, Response, Error))
    fatal("client call failed: %s", Error.c_str());
  return Response;
}

json::Value mustCompile(Client &C, int64_t Id, const std::string &Source) {
  json::Value R = mustCall(C, compileLine(Id, Source));
  if (!R["ok"].isBool() || !R["ok"].asBool())
    fatal("compile %lld answered not-ok: %s", static_cast<long long>(Id),
          R.str().c_str());
  if (!R["output_hash"].isString())
    fatal("compile %lld response lacks output_hash", static_cast<long long>(Id));
  return R;
}

RecoveryFlags parseRecoveryFlags(int argc, char **argv) {
  RecoveryFlags F;
  auto Unsigned = [&](const char *Arg, const char *Prefix, unsigned &Out) {
    const char *P = Arg + std::strlen(Prefix);
    char *End = nullptr;
    long V = std::strtol(P, &End, 10);
    if (End == P || *End != '\0' || V <= 0) {
      F.Ok = false;
      F.Error = std::string("bad value in '") + Arg + "'";
      return;
    }
    Out = static_cast<unsigned>(V);
  };
  for (int I = 1; I != argc; ++I) {
    const char *Arg = argv[I];
    if (std::strcmp(Arg, "--json") == 0)
      F.Json = true;
    else if (std::strcmp(Arg, "--keep") == 0)
      F.Keep = true;
    else if (std::strncmp(Arg, "--rapd=", 7) == 0)
      F.Rapd = Arg + 7;
    else if (std::strncmp(Arg, "--dir=", 6) == 0)
      F.Dir = Arg + 6;
    else if (std::strncmp(Arg, "--sources=", 10) == 0)
      Unsigned(Arg, "--sources=", F.Sources);
    else if (std::strncmp(Arg, "--kills=", 8) == 0)
      Unsigned(Arg, "--kills=", F.Kills);
    else if (std::strncmp(Arg, "--burst=", 8) == 0)
      Unsigned(Arg, "--burst=", F.Burst);
    else {
      F.Ok = false;
      F.Error = std::string("unknown option '") + Arg + "'";
    }
    if (!F.Ok)
      return F;
  }
  if (F.Ok && F.Rapd.empty()) {
    F.Ok = false;
    F.Error = "--rapd=PATH is required";
  }
  return F;
}

} // namespace

int main(int argc, char **argv) {
  RecoveryFlags Flags = parseRecoveryFlags(argc, argv);
  if (!Flags.Ok) {
    std::fprintf(stderr, "server_recovery: %s\n", Flags.Error.c_str());
    std::fprintf(stderr,
                 "usage: server_recovery --rapd=PATH [--json] [--keep] "
                 "[--dir=PATH] [--sources=N] [--kills=N] [--burst=N]\n");
    return 2;
  }

  fs::path Dir = Flags.Dir.empty()
                     ? fs::temp_directory_path() /
                           ("rap_recovery_" + std::to_string(::getpid()))
                     : fs::path(Flags.Dir);
  std::error_code EC;
  fs::remove_all(Dir, EC);
  fs::create_directories(Dir, EC);
  if (EC)
    fatal("cannot create %s: %s", Dir.c_str(), EC.message().c_str());
  ArtifactDir = Dir.string();

  std::string Socket = (Dir / "rapd.sock").string();
  std::string CacheDir = (Dir / "cache").string();
  PidFilePath = (Dir / "rapd.pid").string();
  std::string Log = (Dir / "supervisor.log").string();

  SupervisorPid =
      spawnSupervisor(Flags, Socket, CacheDir, PidFilePath, Log);

  ClientConfig CC;
  CC.SocketPath = Socket;
  CC.RequestTimeoutMs = 60000;
  CC.MaxRetries = 200;
  Client C(CC);

  // Wait for the first child to serve.
  json::Value Pong = mustCall(C, "{\"op\":\"ping\",\"id\":1}");
  if (!Pong["ok"].asBool())
    fatal("initial ping failed: %s", Pong.str().c_str());

  //--- 1. Pre-crash cold compiles: record the ground-truth hashes. ---------
  int64_t NextId = 100;
  std::map<unsigned, std::string> ColdHash;
  for (unsigned I = 0; I != Flags.Sources; ++I) {
    json::Value R = mustCompile(C, NextId++, sourceFor(I));
    ColdHash[I] = R["output_hash"].asString();
  }

  //--- 2. Kill -9 soak: crash the child, fire a burst into the window. -----
  uint64_t HashChecksInBursts = 0;
  for (unsigned K = 0; K != Flags.Kills; ++K) {
    int Child = readChildPid(PidFilePath, 10000);
    if (Child < 0)
      fatal("kill %u: no live child pid in %s", K, PidFilePath.c_str());
    if (::kill(Child, SIGKILL) != 0)
      fatal("kill %u: SIGKILL %d: %s", K, Child, std::strerror(errno));
    for (unsigned B = 0; B != Flags.Burst; ++B) {
      unsigned Src = (K * Flags.Burst + B) % Flags.Sources;
      json::Value R = mustCompile(C, NextId++, sourceFor(Src));
      if (R["output_hash"].asString() != ColdHash[Src])
        fatal("kill %u burst %u: source %u hash diverged across restart "
              "(%s != %s)",
              K, B, Src, R["output_hash"].asString().c_str(),
              ColdHash[Src].c_str());
      HashChecksInBursts += 1;
    }
  }

  //--- 3. Warm-retention sweep: the journal survived every kill. -----------
  unsigned FullWarm = 0;
  for (unsigned I = 0; I != Flags.Sources; ++I) {
    json::Value R = mustCompile(C, NextId++, sourceFor(I));
    if (R["output_hash"].asString() != ColdHash[I])
      fatal("post-recovery sweep: source %u hash diverged", I);
    bool Warm = R["cache_misses"].isInt() && R["cache_misses"].asInt() == 0 &&
                R["cache_hits"].isInt() && R["cache_hits"].asInt() > 0;
    FullWarm += Warm;
  }
  double Retention =
      100.0 * static_cast<double>(FullWarm) / Flags.Sources;
  if (Retention < 80.0)
    fatal("warm retention %.1f%% below the 80%% bar (%u/%u fully warm)",
          Retention, FullWarm, Flags.Sources);

  //--- 4. Recovery telemetry sanity. ---------------------------------------
  json::Value Stats = mustCall(
      C, "{\"op\":\"stats\",\"id\":" + std::to_string(NextId++) + "}");
  const json::Value &Rec = Stats["stats"]["recovery"];
  if (!Rec.isObject())
    fatal("stats response lacks the recovery block: %s", Stats.str().c_str());
  uint64_t Replayed =
      static_cast<uint64_t>(Rec["journal_frames_replayed"].asInt());
  uint64_t Restarts = static_cast<uint64_t>(Rec["restarts"].asInt());
  if (Replayed == 0)
    fatal("recovery block reports zero journal frames replayed after %u "
          "kills",
          Flags.Kills);
  if (Restarts < Flags.Kills)
    fatal("recovery block reports %llu restarts, expected >= %u",
          static_cast<unsigned long long>(Restarts), Flags.Kills);

  //--- 5. Clean shutdown: drain passes through the supervisor as exit 0. ---
  json::Value Bye = mustCall(
      C, "{\"op\":\"shutdown\",\"id\":" + std::to_string(NextId++) + "}");
  if (!Bye["ok"].asBool())
    fatal("shutdown answered not-ok: %s", Bye.str().c_str());
  int Status = 0;
  if (::waitpid(SupervisorPid, &Status, 0) != SupervisorPid)
    fatal("waitpid(supervisor): %s", std::strerror(errno));
  SupervisorPid = -1;
  if (!WIFEXITED(Status) || WEXITSTATUS(Status) != 0)
    fatal("supervisor exited %d (signaled=%d), want clean 0",
          WIFEXITED(Status) ? WEXITSTATUS(Status) : -1, WIFSIGNALED(Status));

  //--- 6. Exactly-once accounting. -----------------------------------------
  const ClientCounters &CN = C.counters();
  if (CN.Responses != CN.Requests)
    fatal("exactly-once violated: %llu requests, %llu responses",
          static_cast<unsigned long long>(CN.Requests),
          static_cast<unsigned long long>(CN.Responses));

  if (Flags.Json) {
    json::Object Row;
    Row["sources"] = Flags.Sources;
    Row["kills"] = Flags.Kills;
    Row["burst"] = Flags.Burst;
    Row["requests"] = CN.Requests;
    Row["responses"] = CN.Responses;
    Row["resends"] = CN.Resends;
    Row["reconnects"] = CN.Reconnects;
    Row["overloaded_waits"] = CN.OverloadedWaits;
    Row["burst_hash_checks"] = HashChecksInBursts;
    Row["hash_mismatches"] = static_cast<uint64_t>(0);
    Row["warm_retained"] = FullWarm;
    Row["warm_retention_pct"] = Retention;
    Row["journal_frames_replayed"] = Replayed;
    Row["restarts"] = Restarts;
    json::Array Rows;
    Rows.push_back(json::Value(std::move(Row)));
    json::Object Root;
    Root["schema"] = "rap-bench-v1";
    Root["bench"] = "server-recovery";
    Root["rows"] = json::Value(std::move(Rows));
    std::printf("%s\n", json::Value(std::move(Root)).str().c_str());
  } else {
    std::printf("server recovery soak: %u sources, %u kill -9s, burst %u\n",
                Flags.Sources, Flags.Kills, Flags.Burst);
    std::printf("  exactly-once: %llu requests -> %llu responses "
                "(%llu resends, %llu reconnects)\n",
                static_cast<unsigned long long>(CN.Requests),
                static_cast<unsigned long long>(CN.Responses),
                static_cast<unsigned long long>(CN.Resends),
                static_cast<unsigned long long>(CN.Reconnects));
    std::printf("  bit-identity: %llu in-burst + %u sweep responses matched "
                "pre-crash hashes\n",
                static_cast<unsigned long long>(HashChecksInBursts),
                Flags.Sources);
    std::printf("  durability: %u/%u sources fully warm after recovery "
                "(%.1f%%, bar 80%%); %llu frames replayed, %llu restarts\n",
                FullWarm, Flags.Sources, Retention,
                static_cast<unsigned long long>(Replayed),
                static_cast<unsigned long long>(Restarts));
    std::printf("  clean SIGTERM-free shutdown: supervisor exit 0\n");
  }

  if (!Flags.Keep)
    fs::remove_all(Dir, EC);
  return 0;
}

#else // !RAP_RECOVERY_HAVE_UNIX

int main() {
  std::fprintf(stderr,
               "server_recovery: requires fork/exec and unix sockets; "
               "skipping on this platform\n");
  return 0;
}

#endif
