//===- bench/interp_throughput.cpp - Interpreter engine throughput --------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
//
// Measures raw interpreter throughput (executed ILOC instructions per
// second) of the direct-threaded engine against the reference switch engine
// over the Table 1 corpus, compiled under RAP. The two engines' repetitions
// are interleaved (S T S T ...) so frequency scaling and cache warmth bias
// neither side, and the per-engine median is reported. Every run's cycle
// count and checksum are cross-checked between engines — a throughput number
// from a wrong interpreter is worthless.
//
// Usage: interp_throughput [--csv|--json] [--k=K] [--reps=N]
//   --k     allocator register count (default 5; first value of the list)
//   --reps  timed repetitions per engine per program (default 5)
//
// Output rows: one per program plus an ALL aggregate (total instructions
// over summed median times). JSON mode wraps rows in the shared
// "rap-bench-v1" envelope with bench = "interp-throughput".
//
//===----------------------------------------------------------------------===//

#include "Table1Support.h"
#include "benchprogs/BenchPrograms.h"
#include "driver/Pipeline.h"
#include "support/Json.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace rap;
using namespace rap::bench;

namespace {

double medianOf(std::vector<double> V) {
  std::sort(V.begin(), V.end());
  return V[V.size() / 2];
}

struct ProgResult {
  const char *Name = nullptr;
  const char *Group = nullptr;
  uint64_t Cycles = 0;
  double SwitchSec = 0;   ///< median wall time of one run
  double ThreadedSec = 0; ///< median wall time of one run
  uint64_t FusedCmpCbr = 0;
  uint64_t FusedLoadIOp = 0;
  uint64_t FusedSpillTriple = 0;
  uint64_t FusedPair = 0;

  double switchMinstr() const { return Cycles / SwitchSec / 1e6; }
  double threadedMinstr() const { return Cycles / ThreadedSec / 1e6; }
  double speedup() const { return SwitchSec / ThreadedSec; }
};

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

} // namespace

int main(int argc, char **argv) {
  // Pre-filter --reps=N; everything else goes through the shared parser.
  unsigned Reps = 5;
  std::vector<char *> Rest;
  Rest.push_back(argv[0]);
  for (int I = 1; I != argc; ++I) {
    if (std::strncmp(argv[I], "--reps=", 7) == 0) {
      char *End = nullptr;
      long N = std::strtol(argv[I] + 7, &End, 10);
      if (End == argv[I] + 7 || *End != '\0' || N < 1) {
        std::fprintf(stderr, "bad --reps value '%s'\n", argv[I] + 7);
        return 1;
      }
      Reps = static_cast<unsigned>(N);
    } else {
      Rest.push_back(argv[I]);
    }
  }
  BenchFlags Flags =
      parseBenchFlags(static_cast<int>(Rest.size()), Rest.data());
  if (!Flags.Ok) {
    std::fprintf(stderr, "%s\n", Flags.Error.c_str());
    return 1;
  }
  unsigned K = Flags.Ks.empty() ? 5 : Flags.Ks.front();

  CompileOptions Options;
  Options.Allocator = AllocatorKind::Rap;
  Options.Alloc.K = K;

  std::vector<ProgResult> Results;
  for (const BenchProgram &P : benchPrograms()) {
    CompileResult CR = compileMiniC(P.Source, Options);
    if (!CR.ok()) {
      std::fprintf(stderr, "FATAL: %s failed to compile:\n%s\n", P.Name,
                   CR.Errors.c_str());
      return 1;
    }

    InterpOptions SwitchOpts;
    SwitchOpts.Dispatch = DispatchKind::Switch;
    InterpOptions ThreadedOpts;
    ThreadedOpts.Dispatch = DispatchKind::Threaded;
    Interpreter SwitchInterp(*CR.Prog, SwitchOpts);
    Interpreter ThreadedInterp(*CR.Prog, ThreadedOpts);

    ProgResult R;
    R.Name = P.Name;
    R.Group = P.Group;
    R.FusedCmpCbr = ThreadedInterp.fusedCmpCbr();
    R.FusedLoadIOp = ThreadedInterp.fusedLoadIOp();
    R.FusedSpillTriple = ThreadedInterp.fusedSpillTriples();
    R.FusedPair = ThreadedInterp.fusedPairs();

    // Warm-up runs double as the correctness cross-check.
    RunResult Sw = SwitchInterp.run();
    RunResult Th = ThreadedInterp.run();
    if (!Sw.Ok || !Th.Ok) {
      std::fprintf(stderr, "FATAL: %s failed to run: %s\n", P.Name,
                   (Sw.Ok ? Th : Sw).Error.c_str());
      return 1;
    }
    if (Sw.Stats.Cycles != Th.Stats.Cycles ||
        Sw.ReturnValue != Th.ReturnValue) {
      std::fprintf(stderr,
                   "FATAL: %s engines disagree (switch %llu cycles, "
                   "threaded %llu cycles)\n",
                   P.Name, static_cast<unsigned long long>(Sw.Stats.Cycles),
                   static_cast<unsigned long long>(Th.Stats.Cycles));
      return 1;
    }
    R.Cycles = Sw.Stats.Cycles;

    // Interleaved timed repetitions: S T S T ... then per-engine medians.
    std::vector<double> SwitchTimes, ThreadedTimes;
    for (unsigned Rep = 0; Rep != Reps; ++Rep) {
      double T0 = now();
      SwitchInterp.run();
      double T1 = now();
      ThreadedInterp.run();
      double T2 = now();
      SwitchTimes.push_back(T1 - T0);
      ThreadedTimes.push_back(T2 - T1);
    }
    R.SwitchSec = medianOf(std::move(SwitchTimes));
    R.ThreadedSec = medianOf(std::move(ThreadedTimes));
    Results.push_back(R);
  }

  // Aggregate: total instructions over summed per-program medians.
  ProgResult All;
  All.Name = "ALL";
  All.Group = "aggregate";
  for (const ProgResult &R : Results) {
    All.Cycles += R.Cycles;
    All.SwitchSec += R.SwitchSec;
    All.ThreadedSec += R.ThreadedSec;
    All.FusedCmpCbr += R.FusedCmpCbr;
    All.FusedLoadIOp += R.FusedLoadIOp;
    All.FusedSpillTriple += R.FusedSpillTriple;
    All.FusedPair += R.FusedPair;
  }
  Results.push_back(All);

  if (Flags.Json) {
    json::Array Rows;
    for (const ProgResult &R : Results) {
      json::Object Row;
      Row["program"] = R.Name;
      Row["group"] = R.Group;
      Row["k"] = K;
      Row["reps"] = Reps;
      Row["instructions"] = R.Cycles;
      Row["switch_sec"] = R.SwitchSec;
      Row["threaded_sec"] = R.ThreadedSec;
      Row["switch_minstr_per_sec"] = R.switchMinstr();
      Row["threaded_minstr_per_sec"] = R.threadedMinstr();
      Row["speedup"] = R.speedup();
      Row["fused_cmp_cbr"] = R.FusedCmpCbr;
      Row["fused_loadi_op"] = R.FusedLoadIOp;
      Row["fused_spill_triple"] = R.FusedSpillTriple;
      Row["fused_pair"] = R.FusedPair;
      Rows.push_back(json::Value(std::move(Row)));
    }
    std::printf("%s\n",
                benchDoc("interp-throughput", std::move(Rows)).str(2).c_str());
    return 0;
  }

  if (Flags.Csv) {
    std::printf("program,group,k,reps,instructions,switch_sec,threaded_sec,"
                "switch_minstr_per_sec,threaded_minstr_per_sec,speedup,"
                "fused_cmp_cbr,fused_loadi_op,fused_spill_triple,"
                "fused_pair\n");
    for (const ProgResult &R : Results)
      std::printf("%s,%s,%u,%u,%llu,%.9f,%.9f,%.2f,%.2f,%.2f,%llu,%llu,"
                  "%llu,%llu\n",
                  R.Name, R.Group, K, Reps,
                  static_cast<unsigned long long>(R.Cycles), R.SwitchSec,
                  R.ThreadedSec, R.switchMinstr(), R.threadedMinstr(),
                  R.speedup(),
                  static_cast<unsigned long long>(R.FusedCmpCbr),
                  static_cast<unsigned long long>(R.FusedLoadIOp),
                  static_cast<unsigned long long>(R.FusedSpillTriple),
                  static_cast<unsigned long long>(R.FusedPair));
    return 0;
  }

  std::printf("Interpreter throughput, Table 1 corpus under RAP k=%u "
              "(%u reps, interleaved medians)\n\n",
              K, Reps);
  std::printf("%-14s %12s %10s %10s %8s  %s\n", "program", "instrs",
              "sw Mi/s", "th Mi/s", "speedup", "fused cmp/ldi/spill/pair");
  for (const ProgResult &R : Results)
    std::printf("%-14s %12llu %10.1f %10.1f %7.2fx  %llu/%llu/%llu/%llu\n",
                R.Name,
                static_cast<unsigned long long>(R.Cycles), R.switchMinstr(),
                R.threadedMinstr(), R.speedup(),
                static_cast<unsigned long long>(R.FusedCmpCbr),
                static_cast<unsigned long long>(R.FusedLoadIOp),
                static_cast<unsigned long long>(R.FusedSpillTriple),
                static_cast<unsigned long long>(R.FusedPair));
  return 0;
}
