//===- bench/region_scale.cpp - Region-parallel RAP scaling ------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scaling harness for the region-parallel speculative first round
/// (DESIGN.md §14): one generated deep/wide function — exactly the shape
/// whose sibling regions the series-parallel schedule can overlap — is
/// allocated repeatedly at several RegionThreads settings, timing only the
/// allocation phase. The workload is chosen spill-free (k=12 over a
/// two-scalar pressure band) so the speculative path engages and commits on
/// every run rather than falling back to the classic walk.
///
/// Before any timing, a verification pass requires every thread count to
/// produce byte-identical ILOC (FNV content hash), structurally equal
/// stats, and the same interpreted checksum as the serial walk — the
/// bit-identical-output invariant is a precondition for publishing numbers,
/// not a separate experiment.
///
/// On a single-core host the thread variants cannot beat serial wall clock
/// (the sweep still proves determinism); on multi-core hosts the row's
/// speedup column reports real overlap. Either way the rows record the
/// host's core count so consumers can interpret the ratios honestly.
///
//===----------------------------------------------------------------------===//

#include "Table1Support.h"

#include "fuzz/ScaleProgram.h"
#include "ir/Linearize.h"
#include "support/Hash.h"

#include <chrono>
#include <thread>

using namespace rap;
using namespace rap::bench;

namespace {

struct RunOutcome {
  uint64_t OutputHash = 0; ///< FNV hash of every function's linearized ILOC
  int64_t Checksum = 0;    ///< interpreted return value
  AllocStats Alloc;
  double AllocSeconds = 0;
  bool Ok = false;
};

/// Compiles \p Src with RAP at \p RegionThreads, timing only allocation
/// (frontend + lowering run outside the clock via a two-step pipeline:
/// compile unallocated, then allocate the program in place).
RunOutcome runOnce(const std::string &Src, unsigned K,
                   unsigned RegionThreads) {
  RunOutcome R;
  CompileOptions Front; // Allocator = None
  CompileResult CR = compileMiniC(Src, Front);
  if (!CR.ok()) {
    std::fprintf(stderr, "region_scale: frontend failed:\n%s\n",
                 CR.Errors.c_str());
    return R;
  }
  AllocOptions Opts;
  Opts.K = K;
  Opts.RegionThreads = RegionThreads;
  auto Start = std::chrono::steady_clock::now();
  R.Alloc = allocateProgram(*CR.Prog, AllocatorKind::Rap, Opts);
  R.AllocSeconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Start)
                       .count();

  Hasher H;
  for (const auto &F : CR.Prog->functions())
    H.str(linearize(*F).str());
  R.OutputHash = H.value();

  Interpreter Interp(*CR.Prog);
  RunResult RR = Interp.run();
  if (!RR.Ok) {
    std::fprintf(stderr, "region_scale: run failed: %s\n", RR.Error.c_str());
    return R;
  }
  R.Checksum = RR.ReturnValue.asInt();
  R.Ok = true;
  return R;
}

} // namespace

int main(int argc, char **argv) {
  BenchFlags Flags = parseBenchFlags(argc, argv);
  if (!Flags.Ok) {
    std::fprintf(stderr, "%s\n", Flags.Error.c_str());
    std::fprintf(stderr,
                 "usage: region_scale [--csv|--json] [--k=12,16,...]\n");
    return 2;
  }

  // Spill-free by construction (probed: the deep workload stays spill-free
  // at k=12 with a 2-scalar pressure band), so the speculative first round
  // commits and the rows measure the parallel path, not the fallback.
  std::vector<unsigned> Ks = Flags.Ks.empty()
                                 ? std::vector<unsigned>{12}
                                 : Flags.Ks;
  const unsigned Threads[] = {1, 2, 4, 8};
  const unsigned Reps = 5;

  fuzz::ScaleProgramConfig Config;
  Config.Seed = 7;
  Config.DeepDepth = 5;
  Config.DeepFanout = 3;
  Config.PressureVars = 2;
  std::string Src = fuzz::ScaleProgramBuilder(Config).buildDeepFunction();

  json::Array Rows;
  bool TableHeader = false;
  for (unsigned K : Ks) {
    // Verification pass: every thread count must reproduce the serial
    // walk's output bit for bit before any timing is published.
    RunOutcome Serial = runOnce(Src, K, 1);
    if (!Serial.Ok)
      return 1;
    if (Serial.Alloc.SpillRounds != 0) {
      std::fprintf(stderr,
                   "region_scale: k=%u workload spills (%llu rounds); "
                   "choose a spill-free k so the speculative path engages\n",
                   K, (unsigned long long)Serial.Alloc.SpillRounds);
      return 1;
    }
    for (unsigned T : Threads) {
      RunOutcome O = runOnce(Src, K, T);
      if (!O.Ok)
        return 1;
      if (O.OutputHash != Serial.OutputHash ||
          O.Checksum != Serial.Checksum ||
          !O.Alloc.structuralEq(Serial.Alloc)) {
        std::fprintf(stderr,
                     "region_scale: k=%u t=%u diverges from serial "
                     "(hash %016llx vs %016llx)\n",
                     K, T, (unsigned long long)O.OutputHash,
                     (unsigned long long)Serial.OutputHash);
        return 1;
      }
    }
    std::fprintf(stderr,
                 "region_scale: k=%u output bit-identical across region "
                 "threads {1,2,4,8} (hash %016llx, %llu regions)\n",
                 K, (unsigned long long)Serial.OutputHash,
                 (unsigned long long)Serial.Alloc.RegionsProcessed);

    // Timing sweep: best-of-Reps allocation seconds per thread count.
    double SerialBest = 0;
    for (unsigned T : Threads) {
      double Best = 0;
      RunOutcome Last;
      for (unsigned R = 0; R != Reps; ++R) {
        RunOutcome O = runOnce(Src, K, T);
        if (!O.Ok)
          return 1;
        if (R == 0 || O.AllocSeconds < Best)
          Best = O.AllocSeconds;
        Last = O;
      }
      if (T == 1)
        SerialBest = Best;
      double Speedup = Best > 0 ? SerialBest / Best : 0;

      if (Flags.Json) {
        json::Object Row;
        Row["workload"] = "deep/seed7/d5xf3/pv2";
        Row["k"] = static_cast<int64_t>(K);
        Row["region_threads"] = static_cast<int64_t>(T);
        Row["host_cores"] = static_cast<int64_t>(
            std::thread::hardware_concurrency());
        Row["alloc_seconds"] = Best;
        Row["speedup_vs_serial"] = Speedup;
        Row["regions"] = static_cast<int64_t>(Last.Alloc.RegionsProcessed);
        Row["graph_builds"] = static_cast<int64_t>(Last.Alloc.GraphBuilds);
        Row["spill_rounds"] = static_cast<int64_t>(Last.Alloc.SpillRounds);
        Row["output_hash"] = std::to_string(Last.OutputHash);
        Row["checksum"] = Last.Checksum;
        Rows.push_back(json::Value(std::move(Row)));
      } else if (Flags.Csv) {
        if (!TableHeader) {
          std::printf("workload,k,region_threads,host_cores,alloc_seconds,"
                      "speedup_vs_serial,regions,output_hash\n");
          TableHeader = true;
        }
        std::printf("deep/seed7/d5xf3/pv2,%u,%u,%u,%.6f,%.2f,%llu,%016llx\n",
                    K, T, std::thread::hardware_concurrency(), Best, Speedup,
                    (unsigned long long)Last.Alloc.RegionsProcessed,
                    (unsigned long long)Last.OutputHash);
      } else {
        if (!TableHeader) {
          std::printf("Region-parallel RAP scaling, generated deep function "
                      "(%u host cores)\n",
                      std::thread::hardware_concurrency());
          std::printf("%3s %8s | %12s %8s | %8s %12s\n", "k", "rthreads",
                      "alloc sec", "speedup", "regions", "output hash");
          TableHeader = true;
        }
        std::printf("%3u %8u | %12.6f %7.2fx | %8llu %12llx\n", K, T, Best,
                    Speedup,
                    (unsigned long long)Last.Alloc.RegionsProcessed,
                    (unsigned long long)Last.OutputHash);
      }
    }
  }

  if (Flags.Json)
    std::printf("%s\n", benchDoc("region-scale", std::move(Rows)).str(2).c_str());
  return 0;
}
