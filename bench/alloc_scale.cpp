//===- bench/alloc_scale.cpp - Parallel allocation driver scaling ------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scaling harness for the parallel per-function allocation driver. All 37
/// Table 1 routines are concatenated into one many-function program (the
/// paper's per-procedure independence argument: each function's region tree,
/// liveness, and interference graphs are private, so functions allocate in
/// parallel with no shared state). Benchmarks time allocateProgram at
/// several thread counts; before any timing, one verification pass checks
/// that a parallel run produces byte-identical per-function output and
/// structurally equal stats versus a serial run.
///
/// Each iteration rebuilds the unallocated program outside the clock
/// (manual timing), so only the allocation phase is measured. On a
/// single-core host the thread variants cannot beat serial wall clock; the
/// point of the sweep there is the determinism guarantee, which the
/// verification pass enforces regardless of core count.
///
//===----------------------------------------------------------------------===//

#include "benchprogs/BenchPrograms.h"
#include "driver/Pipeline.h"

#include "benchmark/benchmark.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

using namespace rap;

namespace {

/// Compiles every Table 1 routine to unallocated ILOC and moves all of the
/// functions into one program. Call-site Callee indices are left unmapped
/// (see IlocProgram::adoptFunction): the result is allocated, never
/// interpreted.
std::unique_ptr<IlocProgram> buildCombinedProgram() {
  CompileOptions FrontendOpts; // Allocator = None
  auto Combined = std::make_unique<IlocProgram>();
  for (const BenchProgram &P : benchPrograms()) {
    CompileResult CR = compileMiniC(P.Source, FrontendOpts);
    if (!CR.ok()) {
      std::fprintf(stderr, "alloc_scale: failed to compile %s:\n%s\n", P.Name,
                   CR.Errors.c_str());
      return nullptr;
    }
    for (std::unique_ptr<IlocFunction> &F : CR.Prog->takeFunctions())
      Combined->adoptFunction(std::move(F));
  }
  return Combined;
}

/// Allocates a fresh copy of the combined program and returns the printed
/// form of every function plus the aggregated stats.
bool allocateAndPrint(AllocatorKind Kind, const AllocOptions &Options,
                      std::vector<std::string> &Printed, AllocStats &Stats) {
  std::unique_ptr<IlocProgram> Prog = buildCombinedProgram();
  if (!Prog)
    return false;
  Stats = allocateProgram(*Prog, Kind, Options);
  Printed.clear();
  for (const auto &F : Prog->functions())
    Printed.push_back(F->str());
  return true;
}

/// One-shot determinism check: serial and 4-thread runs must produce
/// byte-identical code for every function and structurally equal stats.
bool verifyParallelMatchesSerial(AllocatorKind Kind, unsigned K) {
  AllocOptions Serial;
  Serial.K = K;
  Serial.Threads = 1;
  AllocOptions Parallel = Serial;
  Parallel.Threads = 4;

  std::vector<std::string> SerialOut, ParallelOut;
  AllocStats SerialStats, ParallelStats;
  if (!allocateAndPrint(Kind, Serial, SerialOut, SerialStats) ||
      !allocateAndPrint(Kind, Parallel, ParallelOut, ParallelStats))
    return false;

  const char *Name = Kind == AllocatorKind::Rap ? "rap" : "gra";
  if (SerialOut.size() != ParallelOut.size()) {
    std::fprintf(stderr, "alloc_scale: %s/k%u function count mismatch\n",
                 Name, K);
    return false;
  }
  for (size_t I = 0; I != SerialOut.size(); ++I)
    if (SerialOut[I] != ParallelOut[I]) {
      std::fprintf(stderr,
                   "alloc_scale: %s/k%u function %zu differs between serial "
                   "and 4-thread runs\n",
                   Name, K, I);
      return false;
    }
  if (!SerialStats.structuralEq(ParallelStats)) {
    std::fprintf(stderr, "alloc_scale: %s/k%u stats differ between serial "
                         "and 4-thread runs\n",
                 Name, K);
    return false;
  }
  std::fprintf(stderr,
               "alloc_scale: %s/k%u serial == 4-thread across %zu "
               "functions (byte-identical code, equal stats)\n",
               Name, K, SerialOut.size());
  return true;
}

void scaleBench(benchmark::State &State, AllocatorKind Kind, unsigned K,
                unsigned Threads) {
  AllocOptions Options;
  Options.K = K;
  Options.Threads = Threads;
  unsigned NumFunctions = 0;
  for (auto _ : State) {
    std::unique_ptr<IlocProgram> Prog = buildCombinedProgram();
    if (!Prog) {
      State.SkipWithError("compilation failed");
      return;
    }
    NumFunctions = static_cast<unsigned>(Prog->functions().size());
    auto Start = std::chrono::steady_clock::now();
    AllocStats S = allocateProgram(*Prog, Kind, Options);
    auto End = std::chrono::steady_clock::now();
    State.SetIterationTime(
        std::chrono::duration<double>(End - Start).count());
    benchmark::DoNotOptimize(S);
    benchmark::DoNotOptimize(Prog.get());
  }
  State.counters["functions"] = NumFunctions;
}

void registerAll() {
  for (AllocatorKind Kind : {AllocatorKind::Gra, AllocatorKind::Rap}) {
    const char *Name = Kind == AllocatorKind::Rap ? "rap" : "gra";
    for (unsigned Threads : {1u, 2u, 4u}) {
      benchmark::RegisterBenchmark(
          (std::string(Name) + "/all37/k3/t" + std::to_string(Threads))
              .c_str(),
          [Kind, Threads](benchmark::State &S) {
            scaleBench(S, Kind, 3, Threads);
          })
          ->UseManualTime();
    }
  }
}

} // namespace

int main(int argc, char **argv) {
  for (AllocatorKind Kind : {AllocatorKind::Gra, AllocatorKind::Rap})
    for (unsigned K : {3u, 9u})
      if (!verifyParallelMatchesSerial(Kind, K))
        return 1;
  registerAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
