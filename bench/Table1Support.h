//===- bench/Table1Support.h - Shared Table 1 machinery ---------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the evaluation harnesses: run one benchmark under
/// one allocator configuration, compute the paper's percentage metrics, and
/// format table rows the way Table 1 presents them.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_BENCH_TABLE1SUPPORT_H
#define RAP_BENCH_TABLE1SUPPORT_H

#include "benchprogs/BenchPrograms.h"
#include "driver/Pipeline.h"
#include "driver/Report.h"
#include "support/Json.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace rap::bench {

//===----------------------------------------------------------------------===//
// Shared command-line handling. Every table harness accepts the same flags
// (--csv, --json, --k=3,5,...) with the same validation, so the drivers and
// CI scripts can treat them uniformly.
//===----------------------------------------------------------------------===//

struct BenchFlags {
  bool Csv = false;
  bool Json = false;
  std::vector<unsigned> Ks; ///< empty = the harness's default sweep
  bool Ok = true;
  std::string Error; ///< set when !Ok
};

inline BenchFlags parseBenchFlags(int argc, char **argv) {
  BenchFlags F;
  for (int I = 1; I != argc; ++I) {
    const char *Arg = argv[I];
    if (std::strcmp(Arg, "--csv") == 0) {
      F.Csv = true;
    } else if (std::strcmp(Arg, "--json") == 0) {
      F.Json = true;
    } else if (std::strncmp(Arg, "--k=", 4) == 0) {
      F.Ks.clear();
      const char *P = Arg + 4;
      while (*P) {
        char *End = nullptr;
        long K = std::strtol(P, &End, 10);
        if (End == P || K < 3 || (*End != '\0' && *End != ',')) {
          F.Ok = false;
          F.Error = std::string("bad --k list '") + (Arg + 4) +
                    "' (comma-separated integers >= 3)";
          return F;
        }
        F.Ks.push_back(static_cast<unsigned>(K));
        P = *End == ',' ? End + 1 : End;
      }
      if (F.Ks.empty()) {
        F.Ok = false;
        F.Error = "--k needs at least one value";
        return F;
      }
    } else {
      F.Ok = false;
      F.Error = std::string("unknown option '") + Arg + "'";
      return F;
    }
  }
  if (F.Csv && F.Json) {
    F.Ok = false;
    F.Error = "--csv and --json are mutually exclusive";
  }
  return F;
}

/// Wraps \p Rows in the shared "rap-bench-v1" envelope every harness's
/// --json mode emits: {"schema","bench","rows"}. Consumers key on "bench"
/// to know the row shape.
inline json::Value benchDoc(const char *Bench, json::Array Rows) {
  json::Object Root;
  Root["schema"] = "rap-bench-v1";
  Root["bench"] = Bench;
  Root["rows"] = json::Value(std::move(Rows));
  return json::Value(std::move(Root));
}

struct Measurement {
  ExecStats Stats;
  AllocStats Alloc;
  int64_t Checksum = 0;
  bool HasSpillCode = false; ///< allocated code contains ldm/stm
};

/// Compiles and runs \p P under \p Options; verifies the checksum against
/// \p ExpectedChecksum (aborting loudly on miscompilation, since a wrong
/// binary invalidates the whole table).
inline Measurement measure(const BenchProgram &P,
                           const CompileOptions &Options,
                           int64_t ExpectedChecksum) {
  CompileResult CR = compileMiniC(P.Source, Options);
  if (!CR.ok()) {
    std::fprintf(stderr, "FATAL: %s failed to compile:\n%s\n", P.Name,
                 CR.Errors.c_str());
    std::abort();
  }
  Measurement M;
  M.Alloc = CR.Alloc;
  for (const auto &F : CR.Prog->functions()) {
    F->root()->forEachInstr([&](Instr *I) {
      M.HasSpillCode |=
          I->Op == Opcode::LdSpill || I->Op == Opcode::StSpill;
    });
  }
  Interpreter Interp(*CR.Prog);
  RunResult R = Interp.run();
  if (!R.Ok) {
    std::fprintf(stderr, "FATAL: %s failed to run: %s\n", P.Name,
                 R.Error.c_str());
    std::abort();
  }
  M.Stats = R.Stats;
  M.Checksum = R.ReturnValue.asInt();
  if (M.Checksum != ExpectedChecksum) {
    std::fprintf(stderr,
                 "FATAL: %s miscompiled (checksum %lld, expected %lld)\n",
                 P.Name, static_cast<long long>(M.Checksum),
                 static_cast<long long>(ExpectedChecksum));
    std::abort();
  }
  return M;
}

/// Reference (unallocated) checksum for \p P.
inline int64_t referenceChecksum(const BenchProgram &P) {
  CompileOptions Opts;
  RunResult R = compileAndRun(P.Source, Opts);
  if (!R.Ok) {
    std::fprintf(stderr, "FATAL: %s reference run failed: %s\n", P.Name,
                 R.Error.c_str());
    std::abort();
  }
  return R.ReturnValue.asInt();
}

/// The paper's Table 1 metrics for one (benchmark, k) cell: percentage
/// decrease in total executed cycles and the portions attributable to loads
/// and stores.
struct Cell {
  double Tot = 0.0;
  double Ld = 0.0;
  double St = 0.0;
  bool HasSpill = false; ///< blank row entry when neither binary spills
};

inline Cell makeCell(const Measurement &Gra, const Measurement &Rap) {
  Cell C;
  double Base = static_cast<double>(Gra.Stats.Cycles);
  C.Tot = 100.0 *
          (static_cast<double>(Gra.Stats.Cycles) -
           static_cast<double>(Rap.Stats.Cycles)) /
          Base;
  C.Ld = 100.0 *
         (static_cast<double>(Gra.Stats.Loads) -
          static_cast<double>(Rap.Stats.Loads)) /
         Base;
  C.St = 100.0 *
         (static_cast<double>(Gra.Stats.Stores) -
          static_cast<double>(Rap.Stats.Stores)) /
         Base;
  // The paper blanks a cell "if the allocated code does not contain spill
  // code"; copy-statement differences still produce entries (the dominant
  // effect at k=9), so only fully identical executions blank out.
  C.HasSpill = Gra.HasSpillCode || Rap.HasSpillCode ||
               Gra.Stats.Cycles != Rap.Stats.Cycles;
  return C;
}

inline std::string fmtPct(double V, bool Blank) {
  if (Blank)
    return "     -";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%6.1f", V);
  return Buf;
}

/// One Measurement as a JSON object: the dynamic counters plus the
/// allocator ledger (allocStatsJson's shape, shared with rap-stats-v1).
inline json::Object measurementJson(const Measurement &M) {
  json::Object O;
  O["cycles"] = M.Stats.Cycles;
  O["loads"] = M.Stats.Loads;
  O["spill_loads"] = M.Stats.SpillLoads;
  O["stores"] = M.Stats.Stores;
  O["spill_stores"] = M.Stats.SpillStores;
  O["copies"] = M.Stats.Copies;
  O["calls"] = M.Stats.Calls;
  O["checksum"] = static_cast<int64_t>(M.Checksum);
  O["has_spill_code"] = M.HasSpillCode;
  O["alloc"] = allocStatsJson(M.Alloc);
  return O;
}

} // namespace rap::bench

#endif // RAP_BENCH_TABLE1SUPPORT_H
