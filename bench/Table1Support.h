//===- bench/Table1Support.h - Shared Table 1 machinery ---------*- C++ -*-===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the evaluation harnesses: run one benchmark under
/// one allocator configuration, compute the paper's percentage metrics, and
/// format table rows the way Table 1 presents them.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_BENCH_TABLE1SUPPORT_H
#define RAP_BENCH_TABLE1SUPPORT_H

#include "benchprogs/BenchPrograms.h"
#include "driver/Pipeline.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace rap::bench {

struct Measurement {
  ExecStats Stats;
  AllocStats Alloc;
  int64_t Checksum = 0;
  bool HasSpillCode = false; ///< allocated code contains ldm/stm
};

/// Compiles and runs \p P under \p Options; verifies the checksum against
/// \p ExpectedChecksum (aborting loudly on miscompilation, since a wrong
/// binary invalidates the whole table).
inline Measurement measure(const BenchProgram &P,
                           const CompileOptions &Options,
                           int64_t ExpectedChecksum) {
  CompileResult CR = compileMiniC(P.Source, Options);
  if (!CR.ok()) {
    std::fprintf(stderr, "FATAL: %s failed to compile:\n%s\n", P.Name,
                 CR.Errors.c_str());
    std::abort();
  }
  Measurement M;
  M.Alloc = CR.Alloc;
  for (const auto &F : CR.Prog->functions()) {
    F->root()->forEachInstr([&](Instr *I) {
      M.HasSpillCode |=
          I->Op == Opcode::LdSpill || I->Op == Opcode::StSpill;
    });
  }
  Interpreter Interp(*CR.Prog);
  RunResult R = Interp.run();
  if (!R.Ok) {
    std::fprintf(stderr, "FATAL: %s failed to run: %s\n", P.Name,
                 R.Error.c_str());
    std::abort();
  }
  M.Stats = R.Stats;
  M.Checksum = R.ReturnValue.asInt();
  if (M.Checksum != ExpectedChecksum) {
    std::fprintf(stderr,
                 "FATAL: %s miscompiled (checksum %lld, expected %lld)\n",
                 P.Name, static_cast<long long>(M.Checksum),
                 static_cast<long long>(ExpectedChecksum));
    std::abort();
  }
  return M;
}

/// Reference (unallocated) checksum for \p P.
inline int64_t referenceChecksum(const BenchProgram &P) {
  CompileOptions Opts;
  RunResult R = compileAndRun(P.Source, Opts);
  if (!R.Ok) {
    std::fprintf(stderr, "FATAL: %s reference run failed: %s\n", P.Name,
                 R.Error.c_str());
    std::abort();
  }
  return R.ReturnValue.asInt();
}

/// The paper's Table 1 metrics for one (benchmark, k) cell: percentage
/// decrease in total executed cycles and the portions attributable to loads
/// and stores.
struct Cell {
  double Tot = 0.0;
  double Ld = 0.0;
  double St = 0.0;
  bool HasSpill = false; ///< blank row entry when neither binary spills
};

inline Cell makeCell(const Measurement &Gra, const Measurement &Rap) {
  Cell C;
  double Base = static_cast<double>(Gra.Stats.Cycles);
  C.Tot = 100.0 *
          (static_cast<double>(Gra.Stats.Cycles) -
           static_cast<double>(Rap.Stats.Cycles)) /
          Base;
  C.Ld = 100.0 *
         (static_cast<double>(Gra.Stats.Loads) -
          static_cast<double>(Rap.Stats.Loads)) /
         Base;
  C.St = 100.0 *
         (static_cast<double>(Gra.Stats.Stores) -
          static_cast<double>(Rap.Stats.Stores)) /
         Base;
  // The paper blanks a cell "if the allocated code does not contain spill
  // code"; copy-statement differences still produce entries (the dominant
  // effect at k=9), so only fully identical executions blank out.
  C.HasSpill = Gra.HasSpillCode || Rap.HasSpillCode ||
               Gra.Stats.Cycles != Rap.Stats.Cycles;
  return C;
}

inline std::string fmtPct(double V, bool Blank) {
  if (Blank)
    return "     -";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%6.1f", V);
  return Buf;
}

} // namespace rap::bench

#endif // RAP_BENCH_TABLE1SUPPORT_H
