//===- bench/table1_rap_vs_gra.cpp - The paper's Table 1 --------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 1: for every benchmark routine and register-set size
/// k in {3, 5, 7, 9}, the percentage decrease in executed cycles of
/// RAP-allocated code relative to GRA-allocated code (tot), with the
/// portions attributable to the change in executed loads (ld) and stores
/// (st). Every binary's checksum is verified against the unallocated
/// reference before its numbers are reported. Also prints the per-k
/// averages, the grand average (the paper's headline 2.7%), and the count
/// of routines with a positive improvement (paper: 25/37 at k=3, 30/37 at
/// k=9).
///
//===----------------------------------------------------------------------===//

#include "Table1Support.h"

#include <cstdio>
#include <cstring>
#include <vector>

using namespace rap;
using namespace rap::bench;

int main(int argc, char **argv) {
  BenchFlags Flags = parseBenchFlags(argc, argv);
  if (!Flags.Ok) {
    std::fprintf(stderr,
                 "table1_rap_vs_gra: %s\n"
                 "usage: table1_rap_vs_gra [--csv|--json] [--k=3,5,7,9]\n",
                 Flags.Error.c_str());
    return 2;
  }
  const std::vector<unsigned> Ks =
      Flags.Ks.empty() ? std::vector<unsigned>{3, 5, 7, 9} : Flags.Ks;
  const size_t NumKs = Ks.size();

  if (Flags.Csv) {
    std::printf("benchmark,k,tot,ld,st,gra_cycles,rap_cycles,gra_copies,"
                "rap_copies\n");
  } else if (!Flags.Json) {
    std::printf("Table 1: percentage decrease in cycles executed "
                "(RAP vs GRA)\n");
    std::printf("%-14s", "Benchmark");
    for (unsigned K : Ks)
      std::printf(" |  k=%u: tot    ld    st", K);
    std::printf("\n");
  }

  std::vector<double> SumTot(NumKs, 0.0);
  std::vector<int> Positive(NumKs, 0);
  unsigned NumPrograms = 0;
  double GrandSum = 0.0;
  unsigned GrandCount = 0;
  json::Array Rows;

  for (const BenchProgram &P : benchPrograms()) {
    ++NumPrograms;
    int64_t Want = referenceChecksum(P);
    if (!Flags.Csv && !Flags.Json)
      std::printf("%-14s", P.Name);
    for (size_t KI = 0; KI != NumKs; ++KI) {
      unsigned K = Ks[KI];
      CompileOptions GraOpts;
      GraOpts.Allocator = AllocatorKind::Gra;
      GraOpts.Alloc.K = K;
      Measurement Gra = measure(P, GraOpts, Want);

      CompileOptions RapOpts;
      RapOpts.Allocator = AllocatorKind::Rap;
      RapOpts.Alloc.K = K;
      Measurement Rap = measure(P, RapOpts, Want);

      Cell C = makeCell(Gra, Rap);
      SumTot[KI] += C.Tot;
      Positive[KI] += C.Tot > 0.0;
      GrandSum += C.Tot;
      ++GrandCount;
      if (Flags.Json) {
        json::Object Row;
        Row["benchmark"] = P.Name;
        Row["k"] = K;
        Row["tot_pct"] = C.Tot;
        Row["ld_pct"] = C.Ld;
        Row["st_pct"] = C.St;
        Row["gra"] = measurementJson(Gra);
        Row["rap"] = measurementJson(Rap);
        Rows.push_back(json::Value(std::move(Row)));
      } else if (Flags.Csv) {
        std::printf("%s,%u,%.3f,%.3f,%.3f,%llu,%llu,%llu,%llu\n", P.Name, K,
                    C.Tot, C.Ld, C.St,
                    static_cast<unsigned long long>(Gra.Stats.Cycles),
                    static_cast<unsigned long long>(Rap.Stats.Cycles),
                    static_cast<unsigned long long>(Gra.Stats.Copies),
                    static_cast<unsigned long long>(Rap.Stats.Copies));
      } else {
        std::printf(" | %s%s%s", fmtPct(C.Tot, !C.HasSpill).c_str(),
                    fmtPct(C.Ld, !C.HasSpill).c_str(),
                    fmtPct(C.St, !C.HasSpill).c_str());
      }
    }
    if (!Flags.Csv && !Flags.Json)
      std::printf("\n");
  }

  if (Flags.Json) {
    std::printf("%s\n", benchDoc("table1_rap_vs_gra", std::move(Rows))
                            .str(2)
                            .c_str());
    return 0;
  }
  if (!Flags.Csv) {
    std::printf("%-14s", "Average");
    for (size_t KI = 0; KI != NumKs; ++KI)
      std::printf(" | %s%18s", fmtPct(SumTot[KI] / NumPrograms, false).c_str(),
                  "");
    std::printf("\n\n");
    std::printf("Routines improved:");
    for (size_t KI = 0; KI != NumKs; ++KI)
      std::printf("  k=%u: %d/%u", Ks[KI], Positive[KI], NumPrograms);
    std::printf("\n");
    std::printf("Grand average percentage decrease: %.1f%%  "
                "(paper reports 2.7%%)\n",
                GrandSum / GrandCount);
    std::printf("All %u binaries checksum-verified against the unallocated "
                "reference.\n",
                NumPrograms * static_cast<unsigned>(2 * NumKs));
  }
  return 0;
}
