//===- bench/ablation_phases.cpp - RAP phase ablations -----------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablates the design choices DESIGN.md calls out, aggregated over the whole
/// Table 1 suite:
///
///   1. RAP phases: bottom-up allocation alone, + spill-code movement,
///      + the Figure 6 peephole, + the dataflow cleanup extension.
///   2. Peephole fairness: the Figure 6 cleanup applied to GRA output (the
///      paper does not do this; it isolates how much of RAP's win the
///      cleanup alone provides).
///   3. Copy style: era-faithful naive assignment copies (Table 1's setup)
///      versus direct computation into variables (modern codegen), which
///      removes the copy-elimination channel the paper credits.
///
//===----------------------------------------------------------------------===//

#include "Table1Support.h"

#include <cstdio>
#include <functional>

using namespace rap;
using namespace rap::bench;

namespace {

/// Total cycles over the suite under a configuration.
uint64_t totalCycles(const std::function<CompileOptions()> &MakeOpts) {
  uint64_t Total = 0;
  for (const BenchProgram &P : benchPrograms()) {
    CompileOptions Opts = MakeOpts();
    // Reference checksum must use the same front-end options so the
    // comparison is apples to apples.
    CompileOptions RefOpts;
    RefOpts.Granularity = Opts.Granularity;
    RefOpts.Copies = Opts.Copies;
    CompileResult Ref = compileMiniC(P.Source, RefOpts);
    RunResult RefRun = Interpreter(*Ref.Prog).run();
    if (!RefRun.Ok) {
      std::fprintf(stderr, "FATAL: %s reference failed\n", P.Name);
      std::abort();
    }
    Measurement M = measure(P, Opts, RefRun.ReturnValue.asInt());
    Total += M.Stats.Cycles;
  }
  return Total;
}

void report(const char *Name, uint64_t Cycles, uint64_t Baseline) {
  std::printf("  %-44s %12llu  (%+.2f%% vs GRA)\n", Name,
              static_cast<unsigned long long>(Cycles),
              100.0 * (static_cast<double>(Baseline) -
                       static_cast<double>(Cycles)) /
                  static_cast<double>(Baseline));
}

} // namespace

int main(int argc, char **argv) {
  BenchFlags Flags = parseBenchFlags(argc, argv);
  if (!Flags.Ok || Flags.Csv) {
    std::fprintf(stderr,
                 "ablation_phases: %s\n"
                 "usage: ablation_phases [--json] [--k=3,5]\n",
                 Flags.Ok ? "no --csv mode" : Flags.Error.c_str());
    return 2;
  }
  const std::vector<unsigned> Ks =
      Flags.Ks.empty() ? std::vector<unsigned>{3, 5} : Flags.Ks;
  json::Array Rows;
  // In --json mode each configuration becomes one row; pct_vs_baseline uses
  // the same baseline the text report names (GRA, except the direct-codegen
  // pair which compares within itself).
  auto Emit = [&](unsigned K, const char *Config, uint64_t Cycles,
                  uint64_t Baseline) {
    if (Flags.Json) {
      json::Object Row;
      Row["k"] = K;
      Row["config"] = Config;
      Row["cycles"] = Cycles;
      Row["baseline_cycles"] = Baseline;
      Row["pct_vs_baseline"] =
          100.0 * (static_cast<double>(Baseline) -
                   static_cast<double>(Cycles)) /
          static_cast<double>(Baseline);
      Rows.push_back(json::Value(std::move(Row)));
    } else {
      report(Config, Cycles, Baseline);
    }
  };
  for (unsigned K : Ks) {
    if (!Flags.Json)
      std::printf("=== k = %u (total cycles over all 37 routines) ===\n", K);

    auto Base = [&] {
      CompileOptions O;
      O.Alloc.K = K;
      return O;
    };

    uint64_t Gra = totalCycles([&] {
      CompileOptions O = Base();
      O.Allocator = AllocatorKind::Gra;
      return O;
    });
    Emit(K, "GRA (baseline)", Gra, Gra);

    uint64_t GraPeep = totalCycles([&] {
      CompileOptions O = Base();
      O.Allocator = AllocatorKind::Gra;
      O.Alloc.PeepholeForGra = true;
      return O;
    });
    Emit(K, "GRA + Figure 6 peephole", GraPeep, Gra);

    uint64_t RapP1 = totalCycles([&] {
      CompileOptions O = Base();
      O.Allocator = AllocatorKind::Rap;
      O.Alloc.SpillMovement = false;
      O.Alloc.Peephole = false;
      O.Alloc.GlobalCleanup = false;
      return O;
    });
    Emit(K, "RAP phase 1 only", RapP1, Gra);

    uint64_t RapP12 = totalCycles([&] {
      CompileOptions O = Base();
      O.Allocator = AllocatorKind::Rap;
      O.Alloc.Peephole = false;
      O.Alloc.GlobalCleanup = false;
      return O;
    });
    Emit(K, "RAP phases 1+2 (movement)", RapP12, Gra);

    uint64_t RapP123 = totalCycles([&] {
      CompileOptions O = Base();
      O.Allocator = AllocatorKind::Rap;
      O.Alloc.GlobalCleanup = false;
      return O;
    });
    Emit(K, "RAP phases 1+2+3 (paper-exact pipeline)", RapP123, Gra);

    uint64_t RapFull = totalCycles([&] {
      CompileOptions O = Base();
      O.Allocator = AllocatorKind::Rap;
      return O;
    });
    Emit(K, "RAP full (+ dataflow cleanup, Table 1 setup)", RapFull, Gra);

    // Coalescing extension (paper §5 future work): both allocators.
    uint64_t GraCoal = totalCycles([&] {
      CompileOptions O = Base();
      O.Allocator = AllocatorKind::Gra;
      O.Alloc.Coalesce = true;
      return O;
    });
    Emit(K, "GRA + conservative coalescing", GraCoal, Gra);
    uint64_t RapCoal = totalCycles([&] {
      CompileOptions O = Base();
      O.Allocator = AllocatorKind::Rap;
      O.Alloc.Coalesce = true;
      return O;
    });
    Emit(K, "RAP + conservative coalescing", RapCoal, Gra);

    // Copy-style ablation: both allocators under direct codegen.
    uint64_t GraDirect = totalCycles([&] {
      CompileOptions O = Base();
      O.Allocator = AllocatorKind::Gra;
      O.Copies = CopyStyle::Direct;
      return O;
    });
    uint64_t RapDirect = totalCycles([&] {
      CompileOptions O = Base();
      O.Allocator = AllocatorKind::Rap;
      O.Copies = CopyStyle::Direct;
      return O;
    });
    if (Flags.Json) {
      Emit(K, "GRA direct codegen", GraDirect, GraDirect);
      Emit(K, "RAP direct codegen", RapDirect, GraDirect);
    } else {
      std::printf("  copy-style ablation (direct codegen): GRA %llu, RAP %llu "
                  "(%+.2f%%)\n",
                  static_cast<unsigned long long>(GraDirect),
                  static_cast<unsigned long long>(RapDirect),
                  100.0 * (static_cast<double>(GraDirect) -
                           static_cast<double>(RapDirect)) /
                      static_cast<double>(GraDirect));
      std::printf("\n");
    }
  }
  if (Flags.Json)
    std::printf("%s\n",
                benchDoc("ablation_phases", std::move(Rows)).str(2).c_str());
  return 0;
}
