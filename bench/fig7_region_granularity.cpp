//===- bench/fig7_region_granularity.cpp - Figure 7 experiment --------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's Figure 7 discussion as an experiment: pdgcc's
/// one-region-per-source-statement granularity causes extra spill code (a
/// load per subregion referencing a spilled register), and the authors
/// propose larger regions as future work ("it is likely that the
/// performance of RAP could be improved by increasing the number of iloc
/// statements within a region"). This harness runs RAP over the whole
/// Table 1 suite under both granularities and reports executed cycles and
/// spill traffic, plus the static spill-op counts of the Figure 7 claim.
///
//===----------------------------------------------------------------------===//

#include "Table1Support.h"

#include <cstdio>

using namespace rap;
using namespace rap::bench;

int main() {
  const unsigned Ks[] = {3, 5};
  std::printf("Figure 7: region granularity (RAP, per-statement regions "
              "vs merged regions)\n");
  std::printf("%-14s %3s | %10s %8s | %10s %8s | %7s\n", "Benchmark", "k",
              "stmt cyc", "spillops", "merged cyc", "spillops", "delta%");

  double Sum = 0.0;
  unsigned Count = 0;
  for (const BenchProgram &P : benchPrograms()) {
    int64_t Want = referenceChecksum(P);
    for (unsigned K : Ks) {
      CompileOptions Stmt;
      Stmt.Allocator = AllocatorKind::Rap;
      Stmt.Alloc.K = K;
      Stmt.Granularity = RegionGranularity::PerStatement;
      Measurement MS = measure(P, Stmt, Want);

      CompileOptions Merged = Stmt;
      Merged.Granularity = RegionGranularity::Merged;
      Measurement MM = measure(P, Merged, Want);

      double Delta = 100.0 *
                     (static_cast<double>(MS.Stats.Cycles) -
                      static_cast<double>(MM.Stats.Cycles)) /
                     static_cast<double>(MS.Stats.Cycles);
      Sum += Delta;
      ++Count;
      std::printf("%-14s %3u | %10llu %8llu | %10llu %8llu | %6.1f%%\n",
                  P.Name, K,
                  static_cast<unsigned long long>(MS.Stats.Cycles),
                  static_cast<unsigned long long>(MS.Stats.SpillLoads +
                                                  MS.Stats.SpillStores),
                  static_cast<unsigned long long>(MM.Stats.Cycles),
                  static_cast<unsigned long long>(MM.Stats.SpillLoads +
                                                  MM.Stats.SpillStores),
                  Delta);
    }
  }
  std::printf("\nAverage cycle reduction from merged regions: %.1f%%\n",
              Sum / Count);
  std::printf("(positive = the paper's future-work prediction holds: "
              "larger regions insert less spill code)\n");
  return 0;
}
