//===- bench/alloc_cost.cpp - Allocator compile-time and space ---------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark harness for the paper's introduction claims about the
/// allocators themselves: RAP builds many *small* interference graphs
/// ("smaller interference graphs ... than one interference graph for the
/// whole program"), trading allocation time for space.
///
/// Only the allocation phase is measured: each iteration compiles the MiniC
/// source to unallocated ILOC outside the clock (manual timing), then times
/// allocateProgram alone. Counters break the allocator's cost down into
/// graph construction time, liveness time, and peak adjacency memory.
///
//===----------------------------------------------------------------------===//

#include "benchprogs/BenchPrograms.h"
#include "driver/Pipeline.h"
#include "driver/Report.h"
#include "support/Json.h"

#include "benchmark/benchmark.h"

#include <chrono>
#include <cstring>

using namespace rap;

namespace {

void allocBench(benchmark::State &State, const char *Program,
                AllocatorKind Kind, unsigned K) {
  const BenchProgram *P = findBenchProgram(Program);
  if (!P) {
    State.SkipWithError("unknown benchmark program");
    return;
  }
  CompileOptions FrontendOpts; // Allocator = None: virtual-register ILOC
  AllocOptions Alloc;
  Alloc.K = K;
  unsigned MaxNodes = 0;
  double GraphSeconds = 0, LivenessSeconds = 0;
  size_t PeakGraphBytes = 0;
  for (auto _ : State) {
    CompileResult CR = compileMiniC(P->Source, FrontendOpts);
    if (!CR.ok()) {
      State.SkipWithError("compilation failed");
      return;
    }
    auto Start = std::chrono::steady_clock::now();
    AllocStats S = allocateProgram(*CR.Prog, Kind, Alloc);
    auto End = std::chrono::steady_clock::now();
    State.SetIterationTime(
        std::chrono::duration<double>(End - Start).count());
    benchmark::DoNotOptimize(CR.Prog.get());
    MaxNodes = std::max(MaxNodes, S.MaxGraphNodes);
    GraphSeconds = S.GraphBuildSeconds;
    LivenessSeconds = S.LivenessSeconds;
    PeakGraphBytes = std::max(PeakGraphBytes, S.PeakGraphBytes);
  }
  State.counters["max_graph_nodes"] = MaxNodes;
  State.counters["graph_build_s"] = GraphSeconds;
  State.counters["liveness_s"] = LivenessSeconds;
  State.counters["peak_graph_bytes"] =
      static_cast<double>(PeakGraphBytes);
}

void registerAll() {
  const char *Programs[] = {"loop7", "loop21", "queens", "hsort", "intmm"};
  for (const char *Prog : Programs) {
    for (unsigned K : {3u, 9u}) {
      benchmark::RegisterBenchmark(
          (std::string("gra/") + Prog + "/k" + std::to_string(K)).c_str(),
          [Prog, K](benchmark::State &S) {
            allocBench(S, Prog, AllocatorKind::Gra, K);
          })
          ->UseManualTime();
      benchmark::RegisterBenchmark(
          (std::string("rap/") + Prog + "/k" + std::to_string(K)).c_str(),
          [Prog, K](benchmark::State &S) {
            allocBench(S, Prog, AllocatorKind::Rap, K);
          })
          ->UseManualTime();
    }
  }
}

/// --json mode: one single-shot measurement per (allocator, program, k)
/// emitted as "rap-bench-v1" rows — the machine-readable counterpart of the
/// google-benchmark counters (timings are single runs; treat as smoke data).
int runJsonMode() {
  const char *Programs[] = {"loop7", "loop21", "queens", "hsort", "intmm"};
  json::Array Rows;
  for (const char *Prog : Programs) {
    const BenchProgram *P = findBenchProgram(Prog);
    if (!P) {
      std::fprintf(stderr, "alloc_cost: unknown program '%s'\n", Prog);
      return 1;
    }
    for (unsigned K : {3u, 9u}) {
      for (AllocatorKind Kind : {AllocatorKind::Gra, AllocatorKind::Rap}) {
        CompileOptions FrontendOpts;
        CompileResult CR = compileMiniC(P->Source, FrontendOpts);
        if (!CR.ok()) {
          std::fprintf(stderr, "alloc_cost: %s failed to compile\n", Prog);
          return 1;
        }
        AllocOptions Alloc;
        Alloc.K = K;
        auto Start = std::chrono::steady_clock::now();
        AllocStats S = allocateProgram(*CR.Prog, Kind, Alloc);
        double Seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          Start)
                .count();
        json::Object Row;
        Row["benchmark"] = Prog;
        Row["allocator"] = Kind == AllocatorKind::Rap ? "rap" : "gra";
        Row["k"] = K;
        Row["alloc_s"] = Seconds;
        Row["alloc"] = allocStatsJson(S);
        Rows.push_back(json::Value(std::move(Row)));
      }
    }
  }
  json::Object Root;
  Root["schema"] = "rap-bench-v1";
  Root["bench"] = "alloc_cost";
  Root["rows"] = json::Value(std::move(Rows));
  std::printf("%s\n", json::Value(std::move(Root)).str(2).c_str());
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I != argc; ++I)
    if (std::strcmp(argv[I], "--json") == 0)
      return runJsonMode();
  registerAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
