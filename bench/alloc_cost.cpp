//===- bench/alloc_cost.cpp - Allocator compile-time and space ---------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark harness for the paper's introduction claims about the
/// allocators themselves: RAP builds many *small* interference graphs
/// ("smaller interference graphs ... than one interference graph for the
/// whole program"), trading allocation time for space. Measures wall time
/// of each allocator on representative routines and reports the maximum
/// interference-graph size as a counter.
///
//===----------------------------------------------------------------------===//

#include "benchprogs/BenchPrograms.h"
#include "driver/Pipeline.h"

#include "benchmark/benchmark.h"

using namespace rap;

namespace {

void allocBench(benchmark::State &State, const char *Program,
                AllocatorKind Kind, unsigned K) {
  const BenchProgram *P = findBenchProgram(Program);
  if (!P) {
    State.SkipWithError("unknown benchmark program");
    return;
  }
  unsigned MaxNodes = 0;
  for (auto _ : State) {
    CompileOptions Opts;
    Opts.Allocator = Kind;
    Opts.Alloc.K = K;
    CompileResult CR = compileMiniC(P->Source, Opts);
    benchmark::DoNotOptimize(CR.Prog.get());
    MaxNodes = std::max(MaxNodes, CR.Alloc.MaxGraphNodes);
  }
  State.counters["max_graph_nodes"] = MaxNodes;
}

void registerAll() {
  const char *Programs[] = {"loop7", "loop21", "queens", "hsort", "intmm"};
  for (const char *Prog : Programs) {
    for (unsigned K : {3u, 9u}) {
      benchmark::RegisterBenchmark(
          (std::string("gra/") + Prog + "/k" + std::to_string(K)).c_str(),
          [Prog, K](benchmark::State &S) {
            allocBench(S, Prog, AllocatorKind::Gra, K);
          });
      benchmark::RegisterBenchmark(
          (std::string("rap/") + Prog + "/k" + std::to_string(K)).c_str(),
          [Prog, K](benchmark::State &S) {
            allocBench(S, Prog, AllocatorKind::Rap, K);
          });
    }
  }
}

} // namespace

int main(int argc, char **argv) {
  registerAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
