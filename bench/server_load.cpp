//===- bench/server_load.cpp - rapd compile-service load generator ----------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
//
// Replays an editing session against the in-process CompileService: a module
// of register-pressure-heavy functions is compiled over and over while a
// configurable fraction of function bodies ("edit rate") is mutated between
// requests, the way an IDE recompiles a project where most functions did not
// change. Two passes run over the *identical* request sequence:
//
//   cold  CacheBytes = 0: every function re-allocates on every request
//   warm  the configured cache budget: unchanged functions replay their
//         cached allocation, only edited functions pay for allocation
//
// and the harness reports per-request p50/p99 latency, end-to-end
// functions/sec, the cache hit rate, and the warm-over-cold speedup. It also
// asserts, per request, that the warm pass's output hash equals the cold
// pass's — the byte-identity contract under load, not just in unit tests.
//
// Output: human table (default), --csv, or --json in the shared rap-bench-v1
// envelope (bench = "server-load"); scripts/server_smoke.sh merges the JSON
// into BENCH_alloc.json as its "server_load" section.
//
//===----------------------------------------------------------------------===//

#include "server/CompileService.h"
#include "support/Json.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace rap;
using namespace rap::server;

namespace {

//===----------------------------------------------------------------------===//
// Module generator: many independent, pressure-heavy functions.
//===----------------------------------------------------------------------===//

// Each function gets a "version" counter spliced into its body as a literal;
// editing a function means bumping its version, which changes the lowered
// ILOC text and therefore its fingerprint, exactly like a real source edit.
// The bodies carry enough simultaneously-live values (plus an inner loop and
// control flow) that RAP allocation at small k dominates parse + lowering —
// the regime the cache is for.
std::string functionSource(unsigned Index, unsigned Version) {
  char Buf[2048];
  std::snprintf(
      Buf, sizeof(Buf),
      "int work%u(int n, int seed) {\n"
      "  int a = seed + %u;\n"
      "  int b = seed * 3 + %u;\n"
      "  int c = a - b + 11;\n"
      "  int d = a * b %% 9973;\n"
      "  int e = c + d;\n"
      "  int f = e * 2 - a;\n"
      "  int g = f + b - c;\n"
      "  int h = g * d %% 7919;\n"
      "  for (int i = 0; i < n; i = i + 1) {\n"
      "    int t = a * i + b;\n"
      "    if (t %% 2 == 0) {\n"
      "      a = a + c * i - d;\n"
      "      b = b + e %% 4099;\n"
      "      c = c + t - f;\n"
      "    } else {\n"
      "      d = d + g * 2 - t;\n"
      "      e = e + h %% 3671;\n"
      "      f = f + a - i;\n"
      "    }\n"
      "    g = g + (a + b) %% 2753;\n"
      "    h = h + (c - d) * 3;\n"
      "    for (int j = 0; j < 4; j = j + 1) {\n"
      "      a = a + j * b %% 1021;\n"
      "      e = e - j + c %% 769;\n"
      "    }\n"
      "  }\n"
      "  return a + b + c + d + e + f + g + h;\n"
      "}\n",
      Index, Version * 7 + Index, Version * 13 + 5);
  return Buf;
}

std::string moduleSource(const std::vector<unsigned> &Versions) {
  std::string S;
  S.reserve(Versions.size() * 1024 + 512);
  for (unsigned I = 0; I != Versions.size(); ++I)
    S += functionSource(I, Versions[I]);
  // main() calls every function so none is dead; its own body never changes
  // (call operands print callee *indices*, which are stable under edits), so
  // main itself stays a cache hit across the whole session.
  S += "int main() {\n  int acc = 0;\n";
  for (unsigned I = 0; I != Versions.size(); ++I) {
    char Line[64];
    std::snprintf(Line, sizeof(Line), "  acc = acc + work%u(6, %u);\n", I,
                  I + 1);
    S += Line;
  }
  S += "  return acc;\n}\n";
  return S;
}

/// Deterministic PRNG (xorshift64*) so the edit sequence — and therefore the
/// hit/miss pattern and every reported counter except wall time — is
/// identical on every run and in both passes.
struct Rng {
  uint64_t State = 0x9e3779b97f4a7c15ull;
  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545f4914f6cdd1dull;
  }
};

//===----------------------------------------------------------------------===//
// Flags.
//===----------------------------------------------------------------------===//

struct LoadFlags {
  bool Csv = false;
  bool Json = false;
  unsigned Requests = 200;
  unsigned Functions = 24;
  double EditRate = 0.10;
  unsigned Shards = 4;
  unsigned K = 3;
  bool Ok = true;
  std::string Error;
};

LoadFlags parseLoadFlags(int argc, char **argv) {
  LoadFlags F;
  auto Unsigned = [&](const char *Arg, const char *Prefix, unsigned &Out) {
    const char *P = Arg + std::strlen(Prefix);
    char *End = nullptr;
    long V = std::strtol(P, &End, 10);
    if (End == P || *End != '\0' || V <= 0) {
      F.Ok = false;
      F.Error = std::string("bad value in '") + Arg + "'";
      return;
    }
    Out = static_cast<unsigned>(V);
  };
  for (int I = 1; I != argc; ++I) {
    const char *Arg = argv[I];
    if (std::strcmp(Arg, "--csv") == 0) {
      F.Csv = true;
    } else if (std::strcmp(Arg, "--json") == 0) {
      F.Json = true;
    } else if (std::strncmp(Arg, "--requests=", 11) == 0) {
      Unsigned(Arg, "--requests=", F.Requests);
    } else if (std::strncmp(Arg, "--functions=", 12) == 0) {
      Unsigned(Arg, "--functions=", F.Functions);
    } else if (std::strncmp(Arg, "--shards=", 9) == 0) {
      Unsigned(Arg, "--shards=", F.Shards);
    } else if (std::strncmp(Arg, "--k=", 4) == 0) {
      Unsigned(Arg, "--k=", F.K);
      if (F.Ok && F.K < 3) {
        F.Ok = false;
        F.Error = "--k must be >= 3";
      }
    } else if (std::strncmp(Arg, "--edit-rate=", 12) == 0) {
      char *End = nullptr;
      double V = std::strtod(Arg + 12, &End);
      if (End == Arg + 12 || *End != '\0' || V < 0.0 || V > 1.0) {
        F.Ok = false;
        F.Error = std::string("bad --edit-rate '") + (Arg + 12) +
                  "' (fraction in [0,1])";
      } else {
        F.EditRate = V;
      }
    } else {
      F.Ok = false;
      F.Error = std::string("unknown option '") + Arg + "'";
    }
    if (!F.Ok)
      return F;
  }
  if (F.Csv && F.Json) {
    F.Ok = false;
    F.Error = "--csv and --json are mutually exclusive";
  }
  return F;
}

//===----------------------------------------------------------------------===//
// One pass: replay the request sequence against one service configuration.
//===----------------------------------------------------------------------===//

struct PassResult {
  double P50Us = 0.0;
  double P99Us = 0.0;
  double FunctionsPerSec = 0.0;
  double HitRatePct = 0.0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  std::vector<uint64_t> OutputHashes; ///< per request, for cross-pass check
};

PassResult runPass(const std::vector<std::string> &Sources,
                   const LoadFlags &Flags, size_t CacheBytes,
                   const std::string &WarmupSource) {
  ServiceConfig Config;
  Config.Shards = Flags.Shards;
  Config.CacheBytes = CacheBytes;
  CompileService Service(Config);

  RequestOptions Opts;
  Opts.Allocator = AllocatorKind::Rap;
  Opts.K = Flags.K;

  // Warmup request (unmeasured): with a cache it seeds every entry; without
  // one it merely pre-faults the allocator paths so both passes start even.
  {
    ServiceResult R = Service.compile(WarmupSource, Opts);
    if (!R.Ok) {
      std::fprintf(stderr, "FATAL: warmup compile failed:\n%s\n",
                   R.Errors.c_str());
      std::abort();
    }
  }

  PassResult Out;
  Out.OutputHashes.reserve(Sources.size());
  std::vector<double> LatenciesUs;
  LatenciesUs.reserve(Sources.size());
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start = Clock::now();
  for (const std::string &Source : Sources) {
    Clock::time_point T0 = Clock::now();
    ServiceResult R = Service.compile(Source, Opts);
    Clock::time_point T1 = Clock::now();
    if (!R.Ok) {
      std::fprintf(stderr, "FATAL: request compile failed:\n%s\n",
                   R.Errors.c_str());
      std::abort();
    }
    LatenciesUs.push_back(
        std::chrono::duration<double, std::micro>(T1 - T0).count());
    Out.Hits += R.CacheHits;
    Out.Misses += R.CacheMisses;
    Out.OutputHashes.push_back(R.OutputHash);
  }
  double TotalSec =
      std::chrono::duration<double>(Clock::now() - Start).count();

  std::sort(LatenciesUs.begin(), LatenciesUs.end());
  auto Percentile = [&](double P) {
    size_t Idx = static_cast<size_t>(P * (LatenciesUs.size() - 1) + 0.5);
    return LatenciesUs[std::min(Idx, LatenciesUs.size() - 1)];
  };
  Out.P50Us = Percentile(0.50);
  Out.P99Us = Percentile(0.99);
  // Functions per second counts every function slot the service resolved
  // (hit or miss) across the measured requests — the unit of useful work.
  uint64_t FunctionSlots =
      static_cast<uint64_t>(Sources.size()) * (Flags.Functions + 1); // + main
  Out.FunctionsPerSec = TotalSec > 0.0 ? FunctionSlots / TotalSec : 0.0;
  uint64_t Classified = Out.Hits + Out.Misses;
  Out.HitRatePct =
      Classified ? 100.0 * static_cast<double>(Out.Hits) / Classified : 0.0;
  return Out;
}

json::Object rowJson(const char *Mode, const LoadFlags &Flags,
                     const PassResult &R, double Speedup) {
  json::Object O;
  O["mode"] = Mode;
  O["requests"] = static_cast<uint64_t>(Flags.Requests);
  O["functions"] = static_cast<uint64_t>(Flags.Functions);
  O["shards"] = static_cast<uint64_t>(Flags.Shards);
  O["k"] = static_cast<uint64_t>(Flags.K);
  O["edit_rate_pct"] = Flags.EditRate * 100.0;
  O["p50_us"] = R.P50Us;
  O["p99_us"] = R.P99Us;
  O["functions_per_sec"] = R.FunctionsPerSec;
  O["cache_hits"] = R.Hits;
  O["cache_misses"] = R.Misses;
  O["hit_rate_pct"] = R.HitRatePct;
  O["speedup_vs_cold"] = Speedup;
  return O;
}

} // namespace

int main(int argc, char **argv) {
  LoadFlags Flags = parseLoadFlags(argc, argv);
  if (!Flags.Ok) {
    std::fprintf(stderr, "server_load: %s\n", Flags.Error.c_str());
    std::fprintf(stderr,
                 "usage: server_load [--csv|--json] [--requests=N] "
                 "[--functions=N] [--edit-rate=F] [--shards=N] [--k=K]\n");
    return 2;
  }

  // Build the request sequence once: cumulative edits over the module, the
  // same sources replayed by both passes.
  std::vector<unsigned> Versions(Flags.Functions, 0);
  std::string WarmupSource = moduleSource(Versions);
  unsigned EditsPerRequest = static_cast<unsigned>(
      Flags.EditRate * Flags.Functions + 0.5);
  if (Flags.EditRate > 0.0 && EditsPerRequest == 0)
    EditsPerRequest = 1;
  Rng Rand;
  std::vector<std::string> Sources;
  Sources.reserve(Flags.Requests);
  for (unsigned I = 0; I != Flags.Requests; ++I) {
    for (unsigned E = 0; E != EditsPerRequest; ++E)
      Versions[Rand.next() % Flags.Functions] += 1;
    Sources.push_back(moduleSource(Versions));
  }

  PassResult Cold = runPass(Sources, Flags, /*CacheBytes=*/0, WarmupSource);
  PassResult Warm =
      runPass(Sources, Flags, /*CacheBytes=*/256u << 20, WarmupSource);

  // Byte-identity under load: every warm response must hash identically to
  // the cold compile of the same source.
  for (size_t I = 0; I != Sources.size(); ++I) {
    if (Warm.OutputHashes[I] != Cold.OutputHashes[I]) {
      std::fprintf(stderr,
                   "FATAL: warm output diverged from cold at request %zu "
                   "(%016llx != %016llx)\n",
                   I, static_cast<unsigned long long>(Warm.OutputHashes[I]),
                   static_cast<unsigned long long>(Cold.OutputHashes[I]));
      std::abort();
    }
  }

  double Speedup = Cold.FunctionsPerSec > 0.0
                       ? Warm.FunctionsPerSec / Cold.FunctionsPerSec
                       : 0.0;

  if (Flags.Json) {
    json::Array Rows;
    Rows.push_back(json::Value(rowJson("cold", Flags, Cold, 1.0)));
    Rows.push_back(json::Value(rowJson("warm", Flags, Warm, Speedup)));
    json::Object Root;
    Root["schema"] = "rap-bench-v1";
    Root["bench"] = "server-load";
    Root["rows"] = json::Value(std::move(Rows));
    std::printf("%s\n", json::Value(std::move(Root)).str().c_str());
    return 0;
  }

  if (Flags.Csv) {
    std::printf("mode,requests,functions,edit_rate_pct,p50_us,p99_us,"
                "functions_per_sec,hit_rate_pct,speedup_vs_cold\n");
    std::printf("cold,%u,%u,%.1f,%.1f,%.1f,%.1f,%.1f,1.00\n", Flags.Requests,
                Flags.Functions, Flags.EditRate * 100.0, Cold.P50Us,
                Cold.P99Us, Cold.FunctionsPerSec, Cold.HitRatePct);
    std::printf("warm,%u,%u,%.1f,%.1f,%.1f,%.1f,%.1f,%.2f\n", Flags.Requests,
                Flags.Functions, Flags.EditRate * 100.0, Warm.P50Us,
                Warm.P99Us, Warm.FunctionsPerSec, Warm.HitRatePct, Speedup);
    return 0;
  }

  std::printf("server load: %u requests x %u functions, edit rate %.0f%%, "
              "%u shards, k=%u\n",
              Flags.Requests, Flags.Functions, Flags.EditRate * 100.0,
              Flags.Shards, Flags.K);
  std::printf("  %-5s %10s %10s %14s %10s %8s\n", "mode", "p50(us)",
              "p99(us)", "funcs/sec", "hit-rate", "speedup");
  std::printf("  %-5s %10.1f %10.1f %14.1f %9.1f%% %8s\n", "cold", Cold.P50Us,
              Cold.P99Us, Cold.FunctionsPerSec, Cold.HitRatePct, "1.00x");
  std::printf("  %-5s %10.1f %10.1f %14.1f %9.1f%% %7.2fx\n", "warm",
              Warm.P50Us, Warm.P99Us, Warm.FunctionsPerSec, Warm.HitRatePct,
              Speedup);
  std::printf("  warm output byte-identical to cold on all %u requests\n",
              Flags.Requests);
  return 0;
}
