//===- examples/quickstart.cpp - Five-minute tour ----------------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The smallest end-to-end use of the library: compile a MiniC program,
/// look at its PDG region tree and unallocated ILOC, allocate registers
/// with both GRA and RAP at k=4, and execute each binary with the cycle
/// counter. Build and run:
///
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "pdg/Dot.h"

#include <cstdio>

using namespace rap;

static const char *Program = R"(
int a[32];
int sumEvens(int n) {
  int total = 0;
  for (int i = 0; i < n; i = i + 1) {
    if (a[i] % 2 == 0) {
      total = total + a[i];
    }
  }
  return total;
}
int main() {
  for (int i = 0; i < 32; i = i + 1) {
    a[i] = i * 3;
  }
  return sumEvens(32);
}
)";

int main() {
  // 1. Compile without allocation: unlimited virtual registers.
  CompileOptions Unalloc;
  CompileResult Ref = compileMiniC(Program, Unalloc);
  if (!Ref.ok()) {
    std::fprintf(stderr, "compile errors:\n%s", Ref.Errors.c_str());
    return 1;
  }

  IlocFunction *F = Ref.Prog->findFunction("sumEvens");
  std::printf("=== PDG region tree of sumEvens ===\n%s\n",
              regionTreeToText(*F).c_str());
  std::printf("=== unallocated ILOC ===\n%s\n", F->str().c_str());

  RunResult RefRun = Interpreter(*Ref.Prog).run();
  std::printf("reference run: result=%s cycles=%llu\n\n",
              RefRun.ReturnValue.str().c_str(),
              static_cast<unsigned long long>(RefRun.Stats.Cycles));

  // 2. Allocate with each allocator and compare.
  for (AllocatorKind Kind : {AllocatorKind::Gra, AllocatorKind::Rap}) {
    CompileOptions Opts;
    Opts.Allocator = Kind;
    Opts.Alloc.K = 4;
    CompileResult CR = compileMiniC(Program, Opts);
    RunResult R = Interpreter(*CR.Prog).run();
    const char *Name = Kind == AllocatorKind::Gra ? "GRA" : "RAP";
    std::printf("%s k=4: result=%s cycles=%llu loads=%llu stores=%llu "
                "copies=%llu (spilled %u vregs, largest graph %u nodes)\n",
                Name, R.ReturnValue.str().c_str(),
                static_cast<unsigned long long>(R.Stats.Cycles),
                static_cast<unsigned long long>(R.Stats.Loads),
                static_cast<unsigned long long>(R.Stats.Stores),
                static_cast<unsigned long long>(R.Stats.Copies),
                CR.Alloc.SpilledVRegs, CR.Alloc.MaxGraphNodes);
    if (R.ReturnValue != RefRun.ReturnValue) {
      std::fprintf(stderr, "MISCOMPILE!\n");
      return 1;
    }
  }
  std::printf("\nBoth allocations verified against the reference run.\n");
  return 0;
}
