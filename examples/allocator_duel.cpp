//===- examples/allocator_duel.cpp - GRA vs RAP on one routine ---------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compares the two allocators on one Table 1 routine across the paper's
/// register-set sizes, printing the full dynamic breakdown (the per-cell
/// data behind Table 1). Usage:
///
///   ./build/examples/allocator_duel [routine]   (default: loop7)
///
/// Run with no arguments after a build, or pass any of the 37 routine
/// names (loop1..loop22, daxpy, hsort, queens, ...).
///
//===----------------------------------------------------------------------===//

#include "benchprogs/BenchPrograms.h"
#include "driver/Pipeline.h"

#include <cstdio>

using namespace rap;

int main(int argc, char **argv) {
  const char *Name = argc > 1 ? argv[1] : "loop7";
  const BenchProgram *P = findBenchProgram(Name);
  if (!P) {
    std::fprintf(stderr, "unknown routine '%s'; available:\n", Name);
    for (const BenchProgram &B : benchPrograms())
      std::fprintf(stderr, "  %s (%s)\n", B.Name, B.Group);
    return 1;
  }

  CompileOptions RefOpts;
  RunResult Ref = compileAndRun(P->Source, RefOpts);
  if (!Ref.Ok) {
    std::fprintf(stderr, "reference run failed: %s\n", Ref.Error.c_str());
    return 1;
  }
  std::printf("%s (%s): reference checksum %s, %llu cycles unallocated\n\n",
              P->Name, P->Group, Ref.ReturnValue.str().c_str(),
              static_cast<unsigned long long>(Ref.Stats.Cycles));
  std::printf("%3s %5s %10s %9s %9s %8s %7s %7s\n", "k", "alloc", "cycles",
              "loads", "stores", "copies", "spills", "graph");

  for (unsigned K : {3u, 5u, 7u, 9u}) {
    uint64_t GraCycles = 0;
    for (AllocatorKind Kind : {AllocatorKind::Gra, AllocatorKind::Rap}) {
      CompileOptions Opts;
      Opts.Allocator = Kind;
      Opts.Alloc.K = K;
      CompileResult CR = compileMiniC(P->Source, Opts);
      RunResult R = Interpreter(*CR.Prog).run();
      if (!R.Ok || R.ReturnValue != Ref.ReturnValue) {
        std::fprintf(stderr, "MISCOMPILE at k=%u\n", K);
        return 1;
      }
      bool IsGra = Kind == AllocatorKind::Gra;
      if (IsGra)
        GraCycles = R.Stats.Cycles;
      std::printf("%3u %5s %10llu %9llu %9llu %8llu %7u %7u", K,
                  IsGra ? "gra" : "rap",
                  static_cast<unsigned long long>(R.Stats.Cycles),
                  static_cast<unsigned long long>(R.Stats.Loads),
                  static_cast<unsigned long long>(R.Stats.Stores),
                  static_cast<unsigned long long>(R.Stats.Copies),
                  CR.Alloc.SpilledVRegs, CR.Alloc.MaxGraphNodes);
      if (!IsGra)
        std::printf("  -> %+.1f%%",
                    100.0 * (static_cast<double>(GraCycles) -
                             static_cast<double>(R.Stats.Cycles)) /
                        static_cast<double>(GraCycles));
      std::printf("\n");
    }
  }
  return 0;
}
