//===- examples/pdg_viewer.cpp - Figure 1 as DOT ------------------------------===//
//
// Part of the RAP reproduction of Norris & Pollock, PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's Figure 1: the example program's PDG with region
/// nodes, predicate nodes, control-dependence edges (dashed) and data-
/// dependence edges (solid). Prints Graphviz DOT to stdout; render with
///
///   ./build/examples/pdg_viewer | dot -Tpng -o pdg.png
///
/// Pass a path to a MiniC file to view your own program instead.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "pdg/Dot.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace rap;

// The paper's Figure 1 program (while loop with an if-else in the body).
static const char *Figure1 = R"(
int main() {
  int i = 1;        /* 1 */
  while (i < 10) {  /* P1 */
    int j = i + 1;  /* 3 */
    if (j == 7) {   /* P2 */
      j = j + 2;    /* then: 5 */
    } else {
      j = j - 1;    /* else: 6 */
    }
    i = i + j;      /* 7 */
  }
  return i;         /* 8 */
}
)";

int main(int argc, char **argv) {
  std::string Source = Figure1;
  if (argc > 1) {
    std::ifstream In(argv[1]);
    if (!In) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream SS;
    SS << In.rdbuf();
    Source = SS.str();
  }

  CompileOptions Opts; // unallocated; Merged regions match Figure 1's shape
  Opts.Granularity = RegionGranularity::Merged;
  CompileResult CR = compileMiniC(Source, Opts);
  if (!CR.ok()) {
    std::fprintf(stderr, "compile errors:\n%s", CR.Errors.c_str());
    return 1;
  }
  IlocFunction *F = CR.Prog->findFunction("main");
  std::fprintf(stderr, "— region tree —\n%s\n", regionTreeToText(*F).c_str());
  std::printf("%s", pdgToDot(*F, /*WithDataDeps=*/true).c_str());
  return 0;
}
